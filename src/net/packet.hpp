// Packet formats of the BAN protocol stack.
//
// The MAC of the paper (Section 3.2.2) uses five frame kinds: beacons (SB),
// slot requests (SSR), slot grants, cycle updates (dynamic TDMA only) and
// data frames.  A Packet is the in-memory form; serialize() produces the
// exact byte image the radio clocks over the air, protected by the
// nRF2401's hardware CRC-16.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bansim::net {

/// 16-bit node address.  The base station is address 0; kBroadcast matches
/// every receiver's hardware address filter.
using NodeId = std::uint16_t;
inline constexpr NodeId kBaseStationId = 0;
inline constexpr NodeId kBroadcastId = 0xFFFF;

enum class PacketType : std::uint8_t {
  kBeacon = 0x01,       ///< BS -> all: sync + (dynamic) cycle description
  kSlotRequest = 0x02,  ///< node -> BS: SSR, ask to join
  kSlotGrant = 0x03,    ///< BS -> node: assigned slot index
  kCycleUpdate = 0x04,  ///< BS -> all: dynamic TDMA cycle grew/shrank
  kData = 0x05,         ///< node -> BS: application payload
  kAck = 0x06,          ///< BS -> node: link-layer data acknowledgement
};

[[nodiscard]] const char* to_string(PacketType t);

/// Maximum application payload the ShockBurst FIFO can carry after the
/// 6-byte header and 2-byte CRC are accounted for (32-byte FIFO).
inline constexpr std::size_t kMaxPayloadBytes = 24;

/// Fixed header preceding every payload on the air.
struct PacketHeader {
  NodeId dest{kBroadcastId};
  NodeId src{0};
  PacketType type{PacketType::kData};
  std::uint8_t seq{0};
};

inline constexpr std::size_t kHeaderBytes = 6;
inline constexpr std::size_t kCrcBytes = 2;

/// A protocol frame: header + raw payload bytes.
struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;

  /// Total on-air byte count including header and CRC (excludes preamble
  /// and the radio's address word, which are PHY-level framing).
  [[nodiscard]] std::size_t wire_size() const {
    return kHeaderBytes + payload.size() + kCrcBytes;
  }

  /// Byte image as transmitted: header | payload | crc16(header|payload).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a byte image, verifying length and CRC; nullopt when corrupt.
  [[nodiscard]] static std::optional<Packet> deserialize(
      std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_string() const;
};

// --- Typed payload helpers -------------------------------------------------
//
// The MAC exchanges small structured payloads; these helpers give them a
// typed interface while keeping Packet itself a plain byte carrier.

/// Beacon payload: TDMA cycle length, number of slots, slot width, and for
/// the dynamic variant the owner of every slot so nodes learn the cycle
/// layout from the beacon itself.
struct BeaconPayload {
  std::uint32_t cycle_us{0};       ///< full TDMA cycle, microseconds
  std::uint8_t num_slots{0};       ///< data slots currently in the cycle
  std::uint32_t slot_us{0};        ///< width of one data slot, microseconds
  std::uint8_t beacon_seq{0};      ///< increments every cycle
  std::uint8_t pan_id{0};          ///< BAN/cell identifier (coexistence)
  std::vector<NodeId> slot_owners; ///< dynamic TDMA: owner per slot

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<BeaconPayload> deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Slot grant payload: which slot was assigned and the resulting cycle.
struct SlotGrantPayload {
  std::uint8_t slot_index{0};
  std::uint32_t cycle_us{0};

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<SlotGrantPayload> deserialize(
      std::span<const std::uint8_t> bytes);
};

}  // namespace bansim::net
