// Physical-layer framing of the nRF2401 air interface.
//
// On the air, a ShockBurst frame is PREAMBLE | ADDRESS | PAYLOAD | CRC16,
// shifted out at the configured air data rate (1 Mbps on the paper's
// platform).  AirTime captures that arithmetic in one place so the radio
// model, the channel and the energy estimator all agree on how long a given
// packet occupies the medium.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace bansim::phy {

/// Radio-PHY framing constants (nRF2401, ShockBurst).
struct PhyConfig {
  double air_rate_bps{1'000'000.0};  ///< 1 Mbps ShockBurst on-air rate
  std::uint32_t preamble_bits{8};
  std::uint32_t address_bits{40};    ///< the chip supports 8-40; platform uses 40
  std::uint32_t crc_bits{16};
};

/// Time the medium is occupied by `payload_bytes` of MAC-level bytes
/// (header+payload+CRC as produced by Packet::serialize(), whose CRC bytes
/// replace the PHY CRC field — the nRF2401 generates the CRC in hardware,
/// so serialize()'s trailing 2 bytes model exactly those bits).
[[nodiscard]] sim::Duration air_time(const PhyConfig& cfg, std::size_t frame_bytes);

/// One transmission in flight on the channel.
struct AirFrame {
  std::uint64_t id{0};                  ///< unique per transmission
  std::uint32_t tx_id{0};               ///< channel handle of the transmitter
  std::vector<std::uint8_t> bytes;      ///< serialized Packet image
  sim::TimePoint start;                 ///< first preamble bit on the air
  sim::Duration duration;               ///< full occupation of the medium
  bool corrupted{false};                ///< true once any overlap occurred

  [[nodiscard]] sim::TimePoint end() const { return start + duration; }
};

}  // namespace bansim::phy
