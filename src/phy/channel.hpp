// Broadcast wireless medium.
//
// TOSSIM models a collision as a logical OR of the colliding bits and
// delivers every packet intact, making collisions undetectable; the paper
// extends this by corrupting overlapping frames so the receiving radio's
// hardware CRC discards them (Section 4.2).  This Channel implements that
// extension: any temporal overlap between transmissions reaching a common
// receiver corrupts both frames.
//
// Connectivity is a symmetric boolean link matrix (full mesh by default) so
// BAN topologies with out-of-range nodes can be expressed.  Propagation
// delay is configurable but negligible at body scale.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "phy/air_frame.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::phy {

/// Interface a radio implements to hear the medium.
class MediumListener {
 public:
  virtual ~MediumListener() = default;

  /// Energy appeared on the channel (frame began).  The radio decides based
  /// on its own state whether it can lock onto the frame.
  virtual void on_frame_start(const AirFrame& frame) = 0;

  /// The frame finished.  `corrupted` reflects collisions during flight;
  /// the CRC check against the byte image itself is the radio's job.
  virtual void on_frame_end(const AirFrame& frame, bool corrupted) = 0;
};

class Channel {
 public:
  explicit Channel(sim::SimContext& context);

  /// Registers a listener; the returned id names it in the link matrix and
  /// as AirFrame::tx_id.
  std::uint32_t attach(MediumListener& listener);

  /// Severs / restores the symmetric link between two attached radios.
  void set_link(std::uint32_t a, std::uint32_t b, bool connected);
  [[nodiscard]] bool link(std::uint32_t a, std::uint32_t b) const;

  /// One-way propagation delay applied to all links.
  void set_propagation_delay(sim::Duration d) { propagation_ = d; }

  /// Per-link frame error probability: (tx, rx, frame_bytes) -> [0, 1].
  /// When set, each receiver independently draws frame corruption on top
  /// of collision corruption (bit errors -> hardware CRC failure).
  using FrameErrorModel =
      std::function<double(std::uint32_t tx, std::uint32_t rx,
                           std::size_t frame_bytes)>;
  void set_error_model(FrameErrorModel model, sim::Rng rng) {
    error_model_ = std::move(model);
    rng_ = rng;
  }

  /// Run-reset: clears in-flight frames and the traffic/corruption
  /// counters.  Attachments, the link matrix, propagation delay and the
  /// installed error-model *function* survive (the radios stay attached —
  /// stacks are reused, not rebuilt); the bit-error draw stream is
  /// replaced by `error_rng`, which the owner re-derives from the run's
  /// seed exactly as the build path did.
  void reset(sim::Rng error_rng = sim::Rng{0}) {
    in_flight_.clear();
    frames_sent_ = 0;
    collisions_ = 0;
    bit_error_drops_ = 0;
    rng_ = error_rng;
  }

  /// Frames corrupted by the bit-error model (per receiver).
  [[nodiscard]] std::uint64_t bit_error_drops() const { return bit_error_drops_; }

  /// Starts a transmission from radio `tx_id`.  The channel delivers
  /// frame-start to every connected listener after the propagation delay
  /// and frame-end when the air time elapses.  Overlapping transmissions
  /// that share any connected receiver corrupt each other.
  void transmit(std::uint32_t tx_id, std::vector<std::uint8_t> bytes,
                sim::Duration duration);

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// Frames currently on the air (teardown conservation accounting).
  [[nodiscard]] std::size_t frames_in_flight() const { return in_flight_.size(); }

  /// Energy-detect carrier sense: true when any in-flight frame from a
  /// connected transmitter is audible at `rx_id`.  This is the CCA a
  /// 802.15.4-class radio performs; the nRF2401 cannot, so only MACs that
  /// model a CCA-capable front end query it.
  [[nodiscard]] bool busy_at(std::uint32_t rx_id) const;

 private:
  struct Active {
    AirFrame frame;
    bool* corrupted_flag;  ///< owned by the scheduled end-event closure
  };

  /// Marks every pair of overlapping in-flight frames corrupted.
  void detect_collisions();

  sim::SimContext& context_;
  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  std::vector<MediumListener*> listeners_;
  std::vector<std::vector<bool>> links_;
  std::vector<AirFrame> in_flight_;
  sim::Duration propagation_{sim::Duration::zero()};
  FrameErrorModel error_model_;
  sim::Rng rng_{0};
  std::uint64_t frames_sent_{0};
  std::uint64_t collisions_{0};
  std::uint64_t bit_error_drops_{0};
};

}  // namespace bansim::phy
