#include "phy/link_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bansim::phy {

std::vector<BodyPosition> standard_ban_layout(std::size_t node_count) {
  assert(node_count <= 6);
  // Torso coordinates, metres: x to the right, y up, z out of the chest.
  static const BodyPosition kSites[] = {
      {"hip", 0.10, 0.00, 0.05},          // base station (belt-worn)
      {"chest", 0.00, 0.35, 0.08},        // ECG node
      {"head", 0.00, 0.70, 0.02},         // EEG node
      {"left_wrist", -0.45, 0.05, 0.00},  // EMG, left arm
      {"right_wrist", 0.45, 0.05, 0.00},  // EMG, right arm
      {"left_ankle", -0.12, -0.95, 0.00}, // EMG, left leg
      {"right_ankle", 0.12, -0.95, 0.00}, // EMG, right leg
  };
  std::vector<BodyPosition> out;
  out.reserve(node_count + 1);
  for (std::size_t i = 0; i <= node_count; ++i) out.push_back(kSites[i]);
  return out;
}

LinkModel::LinkModel(std::vector<BodyPosition> positions,
                     const LinkBudget& budget, std::uint64_t seed)
    : positions_{std::move(positions)}, budget_{budget},
      shadowing_db_(positions_.size() * positions_.size(), 0.0) {
  reset(seed);
}

void LinkModel::reset(std::uint64_t seed) {
  // Symmetric, per-link shadowing; draw once per unordered pair so the
  // link is reciprocal.
  const std::size_t n = positions_.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      sim::Rng rng = sim::Rng::stream(
          seed, "shadow/" + std::to_string(a) + "/" + std::to_string(b));
      const double s = rng.normal(0.0, budget_.shadowing_sigma_db);
      shadowing_db_[a * n + b] = s;
      shadowing_db_[b * n + a] = s;
    }
  }
}

double LinkModel::distance_m(std::size_t a, std::size_t b) const {
  const BodyPosition& pa = positions_[a];
  const BodyPosition& pb = positions_[b];
  const double dx = pa.x - pb.x;
  const double dy = pa.y - pb.y;
  const double dz = pa.z - pb.z;
  return std::max(budget_.reference_distance_m,
                  std::sqrt(dx * dx + dy * dy + dz * dz));
}

double LinkModel::path_loss_db(std::size_t a, std::size_t b) const {
  const double d = distance_m(a, b);
  const double pl = budget_.reference_loss_db +
                    10.0 * budget_.path_loss_exponent *
                        std::log10(d / budget_.reference_distance_m);
  return pl + shadowing_db_[a * positions_.size() + b];
}

double LinkModel::rx_power_dbm(std::size_t a, std::size_t b) const {
  return budget_.tx_power_dbm - path_loss_db(a, b);
}

double LinkModel::bit_error_rate(std::size_t a, std::size_t b,
                                 double extra_loss_db) const {
  const double snr_db =
      rx_power_dbm(a, b) - extra_loss_db - budget_.noise_floor_dbm;
  const double snr = std::pow(10.0, snr_db / 10.0);
  return std::min(0.5, 0.5 * std::exp(-snr / 2.0));
}

double LinkModel::frame_error_rate(std::size_t a, std::size_t b,
                                   std::size_t frame_bytes,
                                   double extra_loss_db) const {
  if (!connected(a, b, extra_loss_db)) return 1.0;
  const double ber = bit_error_rate(a, b, extra_loss_db);
  const double bits = static_cast<double>(frame_bytes) * 8.0 + 48.0;
  return 1.0 - std::pow(1.0 - ber, bits);
}

bool LinkModel::connected(std::size_t a, std::size_t b,
                          double extra_loss_db) const {
  return rx_power_dbm(a, b) - extra_loss_db >= budget_.sensitivity_dbm;
}

}  // namespace bansim::phy
