#include "phy/channel.hpp"

#include <algorithm>
#include <cassert>

#include "sim/check_hooks.hpp"

namespace bansim::phy {

Channel::Channel(sim::SimContext& context)
    : context_{context}, simulator_{context.simulator},
      tracer_{context.tracer} {}

std::uint32_t Channel::attach(MediumListener& listener) {
  listeners_.push_back(&listener);
  const auto id = static_cast<std::uint32_t>(listeners_.size() - 1);
  for (auto& row : links_) row.push_back(true);
  links_.emplace_back(listeners_.size(), true);
  links_[id][id] = false;  // a radio never hears itself
  return id;
}

void Channel::set_link(std::uint32_t a, std::uint32_t b, bool connected) {
  assert(a < listeners_.size() && b < listeners_.size());
  links_[a][b] = connected;
  links_[b][a] = connected;
}

bool Channel::link(std::uint32_t a, std::uint32_t b) const {
  return links_[a][b];
}

bool Channel::busy_at(std::uint32_t rx_id) const {
  for (const AirFrame& f : in_flight_) {
    if (f.tx_id == rx_id) continue;
    if (links_[f.tx_id][rx_id]) return true;
  }
  return false;
}

void Channel::detect_collisions() {
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    for (std::size_t j = i + 1; j < in_flight_.size(); ++j) {
      AirFrame& fa = in_flight_[i];
      AirFrame& fb = in_flight_[j];
      if (fa.corrupted && fb.corrupted) continue;
      // Overlap in time is guaranteed (both are in flight now); corrupt the
      // pair if any receiver can hear both transmitters, or the
      // transmitters hear each other.
      bool shared_receiver = links_[fa.tx_id][fb.tx_id];
      for (std::size_t r = 0; !shared_receiver && r < listeners_.size(); ++r) {
        shared_receiver = links_[fa.tx_id][r] && links_[fb.tx_id][r];
      }
      if (shared_receiver) {
        if (!fa.corrupted || !fb.corrupted) {
          ++collisions_;
          if (auto* hooks = context_.check_hooks()) {
            hooks->on_collision(this, fa.id, fb.id);
          }
        }
        fa.corrupted = true;
        fb.corrupted = true;
        tracer_.emit(simulator_.now(), sim::TraceCategory::kChannel,
                     sim::TraceNodeId{0}, [&](sim::TraceMessage& m) {
                       m << "collision between tx" << fa.tx_id << " and tx"
                         << fb.tx_id;
                     });
      }
    }
  }
}

void Channel::transmit(std::uint32_t tx_id, std::vector<std::uint8_t> bytes,
                       sim::Duration duration) {
  assert(tx_id < listeners_.size());
  AirFrame frame;
  frame.id = ++frames_sent_;
  frame.tx_id = tx_id;
  frame.bytes = std::move(bytes);
  frame.start = simulator_.now() + propagation_;
  frame.duration = duration;

  const std::uint64_t key = frame.id;
  if (auto* hooks = context_.check_hooks()) {
    hooks->on_frame_transmit(this, frame.id, tx_id, frame.bytes.data(),
                             frame.bytes.size(), frame.start, frame.duration);
  }
  in_flight_.push_back(frame);
  detect_collisions();

  tracer_.emit(simulator_.now(), sim::TraceCategory::kChannel,
               sim::TraceNodeId{0}, [&](sim::TraceMessage& m) {
                 m << "frame on air from tx" << tx_id << " ("
                   << frame.bytes.size() << " B, " << duration << ")";
               });

  // Frame-start notification after propagation.
  simulator_.schedule_in(propagation_, [this, key] {
    for (const AirFrame& f : in_flight_) {
      if (f.id == key) {
        for (std::size_t r = 0; r < listeners_.size(); ++r) {
          if (links_[f.tx_id][r]) listeners_[r]->on_frame_start(f);
        }
        return;
      }
    }
  });

  // Frame-end: deliver with the *final* corruption state, then retire.
  simulator_.schedule_in(propagation_ + duration, [this, key] {
    auto it = std::find_if(in_flight_.begin(), in_flight_.end(),
                           [key](const AirFrame& f) { return f.id == key; });
    if (it == in_flight_.end()) return;
    const AirFrame done = *it;
    in_flight_.erase(it);
    sim::CheckHooks* hooks = context_.check_hooks();
    if (hooks) hooks->on_frame_retired(this, done.id, done.corrupted);
    for (std::size_t r = 0; r < listeners_.size(); ++r) {
      if (!links_[done.tx_id][r]) continue;
      bool corrupted = done.corrupted;
      if (!corrupted && error_model_) {
        const double per = error_model_(
            done.tx_id, static_cast<std::uint32_t>(r), done.bytes.size());
        if (per > 0.0 && rng_.chance(per)) {
          corrupted = true;
          ++bit_error_drops_;
        }
      }
      if (hooks) {
        hooks->on_frame_delivered(this, done.id,
                                  static_cast<std::uint32_t>(r), corrupted);
      }
      listeners_[r]->on_frame_end(done, corrupted);
    }
  });
}

}  // namespace bansim::phy
