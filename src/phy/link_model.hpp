// Body-area link model: positions on the body, log-distance path loss with
// per-link shadowing, and a GFSK link budget that turns received power into
// a frame error probability.
//
// The paper validates on an ideal short-range channel (all five nodes in
// range, losses only from collisions), but motivates the simulator with
// "different working conditions, applications and topologies of BANs".
// This model supplies that axis: nodes placed on chest/head/limbs, a
// creeping-wave-like path-loss exponent around the torso, and the nRF2401
// link budget (-5 dBm TX, ~-80 dBm sensitivity at 1 Mbps), producing
// per-link bit-error rates that the channel turns into CRC-failed frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace bansim::phy {

/// A device position on (or near) the body, metres in torso coordinates.
struct BodyPosition {
  std::string site;  ///< e.g. "chest", "head", "left_wrist"
  double x{0};
  double y{0};
  double z{0};
};

/// The paper's typical deployment (Section 3): a biopotential node on each
/// limb, one on the chest, one on the head; index 0 is the base station
/// (worn at the hip).  Returns 1 + node_count entries, node_count <= 6.
[[nodiscard]] std::vector<BodyPosition> standard_ban_layout(
    std::size_t node_count);

/// Radio-link parameters (nRF2401 class).
struct LinkBudget {
  double tx_power_dbm{-5.0};        ///< ShockBurst at the platform setting
  double sensitivity_dbm{-80.0};    ///< 1 Mbps GFSK
  /// Effective noise floor including noise figure and implementation
  /// losses; -91 dBm puts BER ~ 1e-3 right at the sensitivity limit, the
  /// usual sensitivity definition.
  double noise_floor_dbm{-91.0};
  double path_loss_exponent{3.0};   ///< around-torso creeping wave
  double reference_loss_db{35.0};   ///< at d0 = 10 cm, 2.4 GHz on-body
  double reference_distance_m{0.1};
  double shadowing_sigma_db{3.0};   ///< per-link log-normal shadowing
};

class LinkModel {
 public:
  /// Builds the pairwise link table for `positions` (index = channel id);
  /// shadowing draws are deterministic per (seed, link).
  LinkModel(std::vector<BodyPosition> positions, const LinkBudget& budget,
            std::uint64_t seed);

  [[nodiscard]] std::size_t num_devices() const { return positions_.size(); }
  [[nodiscard]] const BodyPosition& position(std::size_t i) const {
    return positions_[i];
  }

  /// Euclidean distance between devices, metres (floored at d0).
  [[nodiscard]] double distance_m(std::size_t a, std::size_t b) const;

  /// Path loss including the link's shadowing term, dB.
  [[nodiscard]] double path_loss_db(std::size_t a, std::size_t b) const;

  /// Received power at b for a transmission from a, dBm.
  [[nodiscard]] double rx_power_dbm(std::size_t a, std::size_t b) const;

  /// Bit error probability on the link (non-coherent GFSK approximation
  /// BER = 0.5 * exp(-SNR/2), SNR linear).  `extra_loss_db` is transient
  /// attenuation on top of the static path loss (burst fade, a shadowing
  /// episode); zero reproduces the static link exactly.
  [[nodiscard]] double bit_error_rate(std::size_t a, std::size_t b,
                                      double extra_loss_db = 0.0) const;

  /// Frame error probability for `frame_bytes` MAC bytes on the link:
  /// 1 - (1-BER)^bits over payload + preamble/address/CRC overhead bits,
  /// and 1.0 outright when the link closes below sensitivity.  A zero-byte
  /// frame still risks its 48 overhead bits.
  [[nodiscard]] double frame_error_rate(std::size_t a, std::size_t b,
                                        std::size_t frame_bytes,
                                        double extra_loss_db = 0.0) const;

  /// True when rx power clears the receiver sensitivity.
  [[nodiscard]] bool connected(std::size_t a, std::size_t b,
                               double extra_loss_db = 0.0) const;

  [[nodiscard]] const LinkBudget& budget() const { return budget_; }

  /// Run-reset: re-draws the per-link shadowing table for `seed` in place,
  /// exactly as the constructor would.  Positions and the budget survive;
  /// callers holding a LinkModel* (the channel's error-model closure, the
  /// fault injector) stay valid because the object does not move.
  void reset(std::uint64_t seed);

 private:
  std::vector<BodyPosition> positions_;
  LinkBudget budget_;
  std::vector<double> shadowing_db_;  ///< row-major pairwise, symmetric
};

}  // namespace bansim::phy
