#include "phy/air_frame.hpp"

namespace bansim::phy {

sim::Duration air_time(const PhyConfig& cfg, std::size_t frame_bytes) {
  // Packet::serialize() already contains the 2 CRC bytes, so the PHY adds
  // only preamble and address framing on top of the byte image.
  const double bits = static_cast<double>(cfg.preamble_bits) +
                      static_cast<double>(cfg.address_bits) +
                      static_cast<double>(frame_bytes) * 8.0;
  return sim::Duration::from_seconds(bits / cfg.air_rate_bps);
}

}  // namespace bansim::phy
