#include "campaign/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace bansim::campaign {
namespace {

/// Segment header: magic + version + identity, CRC'd so a torn header is
/// distinguishable from an empty-but-valid segment.
constexpr std::array<char, 8> kMagic = {'B', 'A', 'N', 'S',
                                        'E', 'G', '0', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 4 + 4;  // magic,v,gen,w,crc
/// Record frame: payload_size, frame_crc, type, flags, payload.  The CRC
/// covers type+flags+payload (everything after the crc field).
constexpr std::size_t kFrameOverhead = 4 + 4 + 2 + 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::vector<std::uint8_t> encode_header(const SegmentId& id) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize);
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kStoreFormatVersion);
  put_u32(out, id.generation);
  put_u32(out, id.worker);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    RecordType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameOverhead + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // CRC body: type + flags + payload.
  std::vector<std::uint8_t> body;
  body.reserve(4 + payload.size());
  put_u16(body, static_cast<std::uint16_t>(type));
  put_u16(body, 0);  // flags, reserved
  body.insert(body.end(), payload.begin(), payload.end());
  put_u32(out, crc32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32(const std::string& text) {
  return crc32(reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size());
}

std::filesystem::path segments_dir(const std::filesystem::path& dir) {
  return dir / "segments";
}

SegmentWriter::SegmentWriter(const std::filesystem::path& dir, SegmentId id)
    : id_(id) {
  const std::filesystem::path seg_dir = segments_dir(dir);
  std::filesystem::create_directories(seg_dir);
  std::ostringstream name;
  name << "gen" << id.generation << "-w" << id.worker << ".seg";
  path_ = seg_dir / name.str();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd_ < 0) {
    throw StoreError("cannot create segment " + path_.string() + ": " +
                     std::strerror(errno));
  }
  const std::vector<std::uint8_t> header = encode_header(id_);
  write_all(header.data(), header.size());
}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void SegmentWriter::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError("write to " + path_.string() + " failed: " +
                       std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void SegmentWriter::append(RecordType type,
                           const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  write_all(frame.data(), frame.size());
}

void SegmentWriter::append_torn(RecordType type,
                                const std::vector<std::uint8_t>& payload,
                                std::size_t bytes) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  write_all(frame.data(), std::min(bytes, frame.size()));
}

SegmentScan scan_segment(const std::filesystem::path& path) {
  SegmentScan scan;
  scan.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    scan.tail_error = "cannot open segment";
    return scan;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  scan.file_bytes = bytes.size();

  const auto fail_at = [&](std::uint64_t offset, const std::string& why) {
    std::ostringstream msg;
    msg << why << " at offset " << offset;
    scan.tail_error = msg.str();
    return scan;
  };

  if (bytes.size() < kHeaderSize) {
    return fail_at(0, "short header (" + std::to_string(bytes.size()) +
                          " of " + std::to_string(kHeaderSize) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    return fail_at(0, "bad magic");
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  const std::uint32_t header_crc = get_u32(bytes.data() + kHeaderSize - 4);
  if (crc32(bytes.data(), kHeaderSize - 4) != header_crc) {
    return fail_at(0, "header CRC mismatch");
  }
  // Version check happens after the CRC so a corrupted version field reads
  // as a torn header, not a spurious hard error.
  if (version != kStoreFormatVersion) {
    throw StoreError("segment " + path.string() + " has format version " +
                     std::to_string(version) + "; this build reads version " +
                     std::to_string(kStoreFormatVersion));
  }
  scan.id.generation = get_u32(bytes.data() + 12);
  scan.id.worker = get_u32(bytes.data() + 16);

  std::size_t off = kHeaderSize;
  scan.valid_bytes = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameOverhead) {
      return fail_at(off, "torn record frame (short frame header)");
    }
    const std::uint32_t payload_size = get_u32(bytes.data() + off);
    const std::uint32_t frame_crc = get_u32(bytes.data() + off + 4);
    const std::size_t body_size = 4 + payload_size;  // type+flags+payload
    if (bytes.size() - off - 8 < body_size) {
      return fail_at(off, "torn record frame (short payload)");
    }
    const std::uint8_t* body = bytes.data() + off + 8;
    if (crc32(body, body_size) != frame_crc) {
      return fail_at(off, "record CRC mismatch");
    }
    Record rec;
    rec.type = static_cast<RecordType>(get_u16(body));
    rec.payload.assign(body + 4, body + body_size);
    scan.records.push_back(std::move(rec));
    off += 8 + body_size;
    scan.valid_bytes = off;
  }
  return scan;
}

StoreScan scan_store(const std::filesystem::path& dir) {
  StoreScan scan;
  const std::filesystem::path seg_dir = segments_dir(dir);
  if (!std::filesystem::is_directory(seg_dir)) return scan;
  for (const auto& entry : std::filesystem::directory_iterator(seg_dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".seg") {
      continue;
    }
    scan.segments.push_back(scan_segment(entry.path()));
  }
  std::sort(scan.segments.begin(), scan.segments.end(),
            [](const SegmentScan& a, const SegmentScan& b) {
              return a.id == b.id ? a.path.filename() < b.path.filename()
                                  : a.id < b.id;
            });
  return scan;
}

std::uint32_t max_generation(const std::filesystem::path& dir) {
  std::uint32_t max_gen = 0;
  const std::filesystem::path seg_dir = segments_dir(dir);
  if (!std::filesystem::is_directory(seg_dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(seg_dir)) {
    const std::string name = entry.path().filename().string();
    // Parse "gen<G>-w<W>.seg" from the filename rather than the header so
    // a fully torn segment still bumps the generation (its writer may have
    // died before the header landed, but the generation was claimed).
    if (name.rfind("gen", 0) != 0) continue;
    std::size_t pos = 3;
    std::uint32_t gen = 0;
    bool any = false;
    while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
      gen = gen * 10 + static_cast<std::uint32_t>(name[pos] - '0');
      ++pos;
      any = true;
    }
    if (any) max_gen = std::max(max_gen, gen);
  }
  return max_gen;
}

}  // namespace bansim::campaign
