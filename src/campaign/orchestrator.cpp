#include "campaign/orchestrator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"

namespace bansim::campaign {
namespace {

using Clock = std::chrono::steady_clock;

/// argv[1] sentinel that routes a re-exec'd child into worker mode.  The
/// double-underscore shape keeps it from colliding with any real CLI verb.
constexpr const char* kWorkerSentinel = "__bansim_campaign_worker__";

/// Worker id the orchestrator writes its own records (quarantines) under;
/// real worker ids count up from 0 and can never reach it.
constexpr std::uint32_t kOrchestratorWorkerId = 0xFFFFFFFFu;

/// SIGTERM flags: one for an orchestrating process, one for a worker.
/// They are distinct because the orchestrator and worker code paths live
/// in the same binary but never in the same process.
volatile std::sig_atomic_t g_orchestrator_sigterm = 0;
volatile std::sig_atomic_t g_worker_sigterm = 0;

void on_orchestrator_sigterm(int) { g_orchestrator_sigterm = 1; }
void on_worker_sigterm(int) { g_worker_sigterm = 1; }

/// Installs a SIGTERM handler without SA_RESTART (poll/read must wake
/// with EINTR so the shutdown flag gets seen) and restores the previous
/// disposition on scope exit.
class ScopedSigterm {
 public:
  explicit ScopedSigterm(void (*handler)(int)) {
    struct sigaction action {};
    action.sa_handler = handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGTERM, &action, &previous_);
  }
  ~ScopedSigterm() { ::sigaction(SIGTERM, &previous_, nullptr); }
  ScopedSigterm(const ScopedSigterm&) = delete;
  ScopedSigterm& operator=(const ScopedSigterm&) = delete;

 private:
  struct sigaction previous_ {};
};

/// waitpid that retries on EINTR — a signal delivered mid-reap (SIGTERM,
/// SIGCHLD from another worker) must not make us silently mis-reap.
pid_t waitpid_eintr(pid_t pid, int* status) {
  pid_t reaped = -1;
  do {
    reaped = ::waitpid(pid, status, 0);
  } while (reaped < 0 && errno == EINTR);
  return reaped;
}

/// Shard index peeked from a kShardResult/kQuarantine payload without
/// full decode — both codecs lead with the u64 shard index, so the
/// completeness diff only needs these bytes.
[[nodiscard]] std::optional<std::uint64_t> peek_shard_index(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

/// What the store already accounts for: durable shard results and durable
/// quarantine markers.  A shard with both counts as done (data wins).
struct StoreProgress {
  std::set<std::size_t> done;
  std::set<std::size_t> quarantined;
};

[[nodiscard]] StoreProgress store_progress(const std::filesystem::path& dir) {
  StoreProgress progress;
  const StoreScan scan = scan_store(dir);
  for (const SegmentScan& segment : scan.segments) {
    for (const Record& record : segment.records) {
      if (record.type != RecordType::kShardResult &&
          record.type != RecordType::kQuarantine) {
        continue;
      }
      if (const auto index = peek_shard_index(record.payload)) {
        auto& bucket = record.type == RecordType::kShardResult
                           ? progress.done
                           : progress.quarantined;
        bucket.insert(static_cast<std::size_t>(*index));
      }
    }
  }
  for (const std::size_t index : progress.done) {
    progress.quarantined.erase(index);
  }
  return progress;
}

/// One parsed worker_chaos entry set (see orchestrator.hpp).  Ordinal
/// entries only arm inside the first worker of a run; poison entries arm
/// in every worker, including respawns — that is what makes a shard
/// *deterministically* poisonous.
struct WorkerChaos {
  enum class OrdinalMode { kMid, kTorn, kPost, kHang };
  std::size_t ordinal{0};  ///< 1-based executed-shard count (0 = off)
  OrdinalMode ordinal_mode{OrdinalMode::kMid};
  enum class PoisonMode { kHang, kCrash };
  std::map<std::size_t, PoisonMode> poison;  ///< global shard index -> mode
};

[[nodiscard]] WorkerChaos parse_worker_chaos(const std::string& text,
                                             bool arm_ordinal) {
  WorkerChaos chaos;
  if (text.empty() || text == "-") return chaos;
  std::istringstream in(text);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw StoreError(
          "worker chaos entry must be <ordinal>:<mode> or shard=<k>:<mode>, "
          "got '" +
          entry + "'");
    }
    const std::string where = entry.substr(0, colon);
    const std::string mode = entry.substr(colon + 1);
    if (where.rfind("shard=", 0) == 0) {
      std::size_t index = 0;
      try {
        index = std::stoul(where.substr(6));
      } catch (const std::exception&) {
        throw StoreError("worker chaos: bad shard index in '" + entry + "'");
      }
      if (mode == "hang") {
        chaos.poison[index] = WorkerChaos::PoisonMode::kHang;
      } else if (mode == "crash") {
        chaos.poison[index] = WorkerChaos::PoisonMode::kCrash;
      } else {
        throw StoreError("worker chaos: poison mode must be hang|crash, got '" +
                         mode + "'");
      }
      continue;
    }
    std::size_t ordinal = 0;
    try {
      ordinal = std::stoul(where);
    } catch (const std::exception&) {
      throw StoreError("worker chaos: bad ordinal in '" + entry + "'");
    }
    WorkerChaos::OrdinalMode ordinal_mode;
    if (mode == "mid") {
      ordinal_mode = WorkerChaos::OrdinalMode::kMid;
    } else if (mode == "torn") {
      ordinal_mode = WorkerChaos::OrdinalMode::kTorn;
    } else if (mode == "post") {
      ordinal_mode = WorkerChaos::OrdinalMode::kPost;
    } else if (mode == "hang") {
      ordinal_mode = WorkerChaos::OrdinalMode::kHang;
    } else {
      throw StoreError(
          "worker chaos mode must be mid|torn|post|hang, got '" + mode + "'");
    }
    if (arm_ordinal) {
      chaos.ordinal = ordinal;
      chaos.ordinal_mode = ordinal_mode;
    }
  }
  return chaos;
}

[[noreturn]] void kill_self() {
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; placate noreturn if the raise is blocked
}

/// The wedge-forever hook: what a worker stuck in an infinite loop or a
/// deadlock looks like from the outside.  SIGTERM-proof by design — only
/// the watchdog's SIGKILL ends it.
[[noreturn]] void wedge_forever() {
  for (;;) ::pause();
}

void apply_worker_rlimits(std::uint32_t cpu_limit_s,
                          std::uint32_t mem_limit_mb) {
  if (cpu_limit_s != 0) {
    // Soft limit delivers SIGXCPU at the cap; the hard limit a beat later
    // is the SIGKILL backstop should the default disposition be blocked.
    struct rlimit limit {};
    limit.rlim_cur = cpu_limit_s;
    limit.rlim_max = cpu_limit_s + 2;
    ::setrlimit(RLIMIT_CPU, &limit);
  }
  if (mem_limit_mb != 0) {
    struct rlimit limit {};
    limit.rlim_cur = static_cast<rlim_t>(mem_limit_mb) * 1024 * 1024;
    limit.rlim_max = limit.rlim_cur;
    ::setrlimit(RLIMIT_AS, &limit);
  }
}

/// Reads one '\n'-terminated line from fd, retrying on EINTR.  Returns
/// false on EOF or when a SIGTERM asked the worker to wind down.
bool read_work_line(int fd, std::string& line) {
  line.clear();
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &byte, 1);
    if (n < 0) {
      if (errno == EINTR) {
        if (g_worker_sigterm != 0) return false;
        continue;
      }
      return false;
    }
    if (n == 0) return false;  // EOF: normal shutdown
    if (byte == '\n') return true;
    line.push_back(byte);
  }
}

/// The worker loop: read global shard indices off stdin (one per line),
/// execute each against warmed cells, append the result to this worker's
/// segment, and speak the heartbeat protocol on stdout ("start <k>", one
/// "hb <k>" per patient, "done <k>").  EOF or SIGTERM is a clean
/// shutdown: the in-flight shard finishes, a final checkpoint records the
/// worker's true progress, and the process exits 0.
int worker_main(const std::filesystem::path& dir, std::uint32_t generation,
                std::uint32_t worker_id, std::size_t checkpoint_every,
                const std::string& chaos_text, std::uint32_t cpu_limit_s,
                std::uint32_t mem_limit_mb) {
  ScopedSigterm sigterm(on_worker_sigterm);
  apply_worker_rlimits(cpu_limit_s, mem_limit_mb);
  const WorkerChaos chaos =
      parse_worker_chaos(chaos_text, /*arm_ordinal=*/worker_id == 0);
  const LoadedCampaign campaign = load_campaign(dir);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  ShardRunner runner(campaign.spec, campaign.base);
  SegmentWriter writer(dir, SegmentId{generation, worker_id});

  std::size_t executed = 0;
  std::size_t last_index = 0;
  const auto flush_final_checkpoint = [&] {
    // The cadence checkpoint already covered an exact multiple; anything
    // else gets its progress pinned by one final record.
    if (executed == 0 || checkpoint_every == 0) return;
    if (executed % checkpoint_every == 0) return;
    Checkpoint checkpoint;
    checkpoint.shards_completed = executed;
    checkpoint.last_shard = last_index;
    writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
  };

  std::string line;
  while (g_worker_sigterm == 0 && read_work_line(STDIN_FILENO, line)) {
    if (line.empty()) continue;
    std::size_t index = 0;
    try {
      index = std::stoul(line);
    } catch (const std::exception&) {
      std::cerr << "worker " << worker_id << ": bad shard index '" << line
                << "'\n";
      return 2;
    }
    if (index >= shards.size()) {
      std::cerr << "worker " << worker_id << ": shard " << index
                << " out of range (" << shards.size() << " planned)\n";
      return 2;
    }
    ++executed;
    last_index = index;
    std::cout << "start " << index << "\n" << std::flush;

    const bool ordinal_here =
        chaos.ordinal != 0 && executed == chaos.ordinal;
    if (ordinal_here && chaos.ordinal_mode == WorkerChaos::OrdinalMode::kMid) {
      kill_self();
    }
    if (ordinal_here &&
        chaos.ordinal_mode == WorkerChaos::OrdinalMode::kHang) {
      wedge_forever();
    }
    if (const auto poison = chaos.poison.find(index);
        poison != chaos.poison.end()) {
      if (poison->second == WorkerChaos::PoisonMode::kHang) wedge_forever();
      kill_self();
    }

    runner.set_progress([&](std::size_t) {
      std::cout << "hb " << index << "\n" << std::flush;
    });
    const ShardResult result = runner.run(shards[index]);
    const std::vector<std::uint8_t> payload = encode_shard_result(result);
    if (ordinal_here &&
        chaos.ordinal_mode == WorkerChaos::OrdinalMode::kTorn) {
      // Die mid-write: land the frame header plus half the payload, the
      // organic torn tail a SIGKILL during write() produces.
      writer.append_torn(RecordType::kShardResult, payload,
                         12 + payload.size() / 2);
      kill_self();
    }
    writer.append(RecordType::kShardResult, payload);
    if (ordinal_here &&
        chaos.ordinal_mode == WorkerChaos::OrdinalMode::kPost) {
      kill_self();
    }

    if (checkpoint_every != 0 && executed % checkpoint_every == 0) {
      Checkpoint checkpoint;
      checkpoint.shards_completed = executed;
      checkpoint.last_shard = index;
      writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
    }
    std::cout << "done " << index << "\n" << std::flush;
  }
  flush_final_checkpoint();
  return 0;
}

/// One spawned worker process and its work-queue plumbing.
struct WorkerProc {
  pid_t pid{-1};
  int to_child{-1};    ///< write end: shard assignments
  int from_child{-1};  ///< read end: heartbeat/done replies
  std::uint32_t id{0};
  std::string buf;
  std::optional<std::size_t> inflight;
  Clock::time_point last_progress{};  ///< dispatch/start/hb/done time
  Clock::time_point inflight_start{};
  bool alive{false};
};

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

[[nodiscard]] WorkerProc spawn_worker(const std::filesystem::path& dir,
                                      std::uint32_t generation,
                                      std::uint32_t worker_id,
                                      const RunCampaignOptions& options) {
  int in_pipe[2];   // orchestrator -> worker stdin
  int out_pipe[2];  // worker stdout -> orchestrator
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) {
    throw StoreError(std::string("pipe: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw StoreError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string dir_str = dir.string();
    const std::string gen_str = std::to_string(generation);
    const std::string id_str = std::to_string(worker_id);
    const std::string ckpt_str = std::to_string(options.checkpoint_every);
    const std::string chaos_str =
        options.worker_chaos.empty() ? "-" : options.worker_chaos;
    const std::string cpu_str = std::to_string(options.worker_cpu_limit_s);
    const std::string mem_str = std::to_string(options.worker_mem_limit_mb);
    const char* argv[] = {"bansim-campaign-worker",
                          kWorkerSentinel,
                          dir_str.c_str(),
                          gen_str.c_str(),
                          id_str.c_str(),
                          ckpt_str.c_str(),
                          chaos_str.c_str(),
                          cpu_str.c_str(),
                          mem_str.c_str(),
                          nullptr};
    ::execv("/proc/self/exe", const_cast<char* const*>(argv));
    std::perror("execv /proc/self/exe");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  WorkerProc worker;
  worker.pid = pid;
  worker.to_child = in_pipe[1];
  worker.from_child = out_pipe[0];
  worker.id = worker_id;
  worker.alive = true;
  worker.last_progress = Clock::now();
  return worker;
}

/// Why a shard attempt failed — recorded in the quarantine record when
/// the budget runs out.
enum class FailKind { kHang, kCrash, kExit };

[[nodiscard]] QuarantineRecord::Reason to_reason(FailKind kind) {
  switch (kind) {
    case FailKind::kHang:
      return QuarantineRecord::Reason::kHang;
    case FailKind::kCrash:
      return QuarantineRecord::Reason::kCrash;
    case FailKind::kExit:
      return QuarantineRecord::Reason::kExit;
  }
  return QuarantineRecord::Reason::kExit;
}

/// The multi-process orchestration loop with the worker-health layer.
/// Kept as a class because the watchdog, retry, and dispatch decisions
/// share a lot of state the old lambda soup obscured.
class MultiprocessRun {
 public:
  MultiprocessRun(const std::filesystem::path& dir,
                  const RunCampaignOptions& options, const CampaignSpec& spec,
                  std::uint32_t generation, std::deque<std::size_t> pending,
                  RunCampaignResult result)
      : dir_(dir),
        options_(options),
        spec_(spec),
        shards_(plan_shards(spec)),
        generation_(generation),
        pending_(std::move(pending)),
        result_(std::move(result)),
        estimate_ms_(spec.variant_count(), 0.0) {}

  RunCampaignResult run() {
    // A dead worker's queue pipe raises SIGPIPE on write; we want the
    // EPIPE return instead so the shard can be requeued.
    ::signal(SIGPIPE, SIG_IGN);
    g_orchestrator_sigterm = 0;
    ScopedSigterm sigterm(on_orchestrator_sigterm);

    const unsigned initial = std::min<unsigned>(
        options_.workers,
        static_cast<unsigned>(std::max<std::size_t>(pending_.size(), 1)));
    // Retry budgets bound the deaths any one shard can cause; this is the
    // global backstop against pathologies the budgets don't see (e.g. a
    // config that kills workers before they ever take a shard).
    respawn_budget_ = 4 * options_.workers + 8 +
                      static_cast<unsigned>(4 * spec_.retry_budget);
    // Pre-size for the common case so a mid-loop spawn() rarely moves
    // workers_; loops that spawn must still not hold WorkerProc
    // references across the call (see run_watchdog).
    workers_.reserve(initial + respawn_budget_ + 1);
    for (unsigned i = 0; i < initial; ++i) spawn();

    while (true) {
      if (g_orchestrator_sigterm != 0 && !stopping_) {
        // Operator shutdown: stop handing out work, let in-flight shards
        // finish (the watchdog stays armed so a wedged worker cannot hold
        // the shutdown hostage), then return incomplete-but-valid.
        stopping_ = true;
        pending_.clear();
      }
      const Clock::time_point now = Clock::now();
      run_watchdog(now);
      feed_workers(now);

      std::size_t live = 0;
      std::size_t busy = 0;
      for (const WorkerProc& worker : workers_) {
        if (worker.alive) ++live;
        if (worker.alive && worker.inflight) ++busy;
      }
      if (pending_.empty() && busy == 0) break;
      if (live == 0) {
        if (may_respawn()) {
          spawn();
          continue;
        }
        break;
      }
      poll_and_read(now);
    }

    for (WorkerProc& worker : workers_) {
      if (!worker.alive) continue;
      close_fd(worker.to_child);
      close_fd(worker.from_child);
      int status = 0;
      waitpid_eintr(worker.pid, &status);
    }
    const std::size_t accounted =
        result_.shards_run + result_.shards_already_complete +
        result_.shards_already_quarantined + result_.shards_quarantined;
    result_.incomplete = accounted < result_.shards_total;
    return result_;
  }

 private:
  void spawn() {
    workers_.push_back(
        spawn_worker(dir_, generation_, next_worker_id_++, options_));
    ++result_.workers_spawned;
  }

  [[nodiscard]] bool may_respawn() const {
    return options_.respawn_dead_workers &&
           result_.workers_died < respawn_budget_ && !stopping_ &&
           !pending_.empty();
  }

  /// Wall-clock deadline for the worker's in-flight shard: the ceiling
  /// while its variant has no runtime estimate yet (first shard pays cell
  /// warm-up), else factor x the trailing estimate, clamped.
  [[nodiscard]] double deadline_ms(const WorkerProc& worker) const {
    const double estimate = estimate_ms_[shards_[*worker.inflight].variant];
    if (estimate <= 0.0) return spec_.deadline_ceiling_ms;
    return std::clamp(spec_.deadline_factor * estimate,
                      static_cast<double>(spec_.deadline_floor_ms),
                      static_cast<double>(spec_.deadline_ceiling_ms));
  }

  /// Charges one failed attempt to a shard: back under budget it is
  /// requeued behind an exponential backoff; at budget it is quarantined
  /// — a durable store record every later resume skips.
  void note_failure(std::size_t index, FailKind kind) {
    if (stopping_) return;  // winding down: the next resume retries it
    ShardState& state = shard_state_[index];
    ++state.attempts;
    if (state.attempts >= spec_.retry_budget) {
      QuarantineRecord record;
      record.shard = index;
      record.attempts = static_cast<std::uint32_t>(state.attempts);
      record.reason = to_reason(kind);
      if (!quarantine_writer_) {
        quarantine_writer_.emplace(
            dir_, SegmentId{generation_, kOrchestratorWorkerId});
      }
      quarantine_writer_->append(RecordType::kQuarantine,
                                 encode_quarantine(record));
      ++result_.shards_quarantined;
      return;
    }
    const std::uint64_t shift =
        std::min<std::uint64_t>(state.attempts - 1, 20);
    const std::uint64_t backoff =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(
                                    options_.backoff_base_ms)
                                    << shift,
                                options_.backoff_cap_ms);
    state.eligible_at = Clock::now() + std::chrono::milliseconds(backoff);
    pending_.push_front(index);
  }

  void reap(WorkerProc& worker, std::optional<FailKind> forced) {
    // EOF from an idle worker whose queue we already closed is clean
    // retirement, not a death — it ran out of work and exited 0.
    const bool retired = !forced && !worker.inflight && worker.to_child < 0;
    worker.alive = false;
    close_fd(worker.to_child);
    close_fd(worker.from_child);
    int status = 0;
    waitpid_eintr(worker.pid, &status);
    if (retired) return;
    ++result_.workers_died;
    if (worker.inflight) {
      const FailKind kind =
          forced ? *forced
                 : (WIFSIGNALED(status) ? FailKind::kCrash : FailKind::kExit);
      const std::size_t index = *worker.inflight;
      worker.inflight.reset();
      note_failure(index, kind);
    }
  }

  void run_watchdog(Clock::time_point now) {
    // Index-based on purpose: spawn() appends to workers_, which would
    // invalidate range-for iterators and any held WorkerProc reference.
    const std::size_t count = workers_.size();
    for (std::size_t i = 0; i < count; ++i) {
      WorkerProc& worker = workers_[i];
      if (!worker.alive || !worker.inflight) continue;
      const double silent_ms =
          std::chrono::duration<double, std::milli>(now -
                                                    worker.last_progress)
              .count();
      if (silent_ms <= deadline_ms(worker)) continue;
      ::kill(worker.pid, SIGKILL);
      ++result_.workers_hung;
      reap(worker, FailKind::kHang);
      if (may_respawn()) spawn();
    }
  }

  /// Assigns the next *eligible* pending shard (skipping ones still in
  /// backoff) to every idle worker; closes a worker's queue when no work
  /// remains at all.  A write that finds the worker dead reaps it.
  void feed_workers(Clock::time_point now) {
    for (WorkerProc& worker : workers_) {
      if (!worker.alive || worker.inflight) continue;
      if (pending_.empty()) {
        close_fd(worker.to_child);
        continue;
      }
      const auto eligible =
          std::find_if(pending_.begin(), pending_.end(), [&](std::size_t k) {
            const auto it = shard_state_.find(k);
            return it == shard_state_.end() || it->second.eligible_at <= now;
          });
      if (eligible == pending_.end()) continue;  // all waiting out backoff
      const std::size_t index = *eligible;
      const std::string line = std::to_string(index) + "\n";
      const ssize_t n = ::write(worker.to_child, line.data(), line.size());
      if (n != static_cast<ssize_t>(line.size())) {
        reap(worker, std::nullopt);
        continue;
      }
      pending_.erase(eligible);
      worker.inflight = index;
      worker.last_progress = now;
      worker.inflight_start = now;
    }
  }

  /// Bounded poll timeout: the soonest watchdog deadline or backoff
  /// expiry, clamped so the loop always revisits its state within a
  /// second even if the arithmetic says "longer".
  [[nodiscard]] int poll_timeout_ms(Clock::time_point now) const {
    double soonest = 1000.0;
    for (const WorkerProc& worker : workers_) {
      if (!worker.alive || !worker.inflight) continue;
      const double elapsed =
          std::chrono::duration<double, std::milli>(now -
                                                    worker.last_progress)
              .count();
      soonest = std::min(soonest, deadline_ms(worker) - elapsed);
    }
    for (const std::size_t index : pending_) {
      const auto it = shard_state_.find(index);
      if (it == shard_state_.end()) continue;
      const double wait = std::chrono::duration<double, std::milli>(
                              it->second.eligible_at - now)
                              .count();
      if (wait > 0) soonest = std::min(soonest, wait);
    }
    return std::clamp(static_cast<int>(soonest) + 1, 1, 1000);
  }

  void poll_and_read(Clock::time_point now) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].from_child, POLLIN, 0});
      fd_owner.push_back(i);
    }
    if (::poll(fds.data(), fds.size(), poll_timeout_ms(now)) < 0) {
      if (errno == EINTR) return;  // SIGTERM: the loop head handles it
      throw StoreError(std::string("poll: ") + std::strerror(errno));
    }
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerProc& worker = workers_[fd_owner[f]];
      char chunk[256];
      const ssize_t n = ::read(worker.from_child, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;  // signal, not a dead worker
      if (n <= 0) {
        reap(worker, std::nullopt);
        if (may_respawn()) spawn();
        continue;
      }
      worker.buf.append(chunk, static_cast<std::size_t>(n));
      consume_replies(worker);
    }
  }

  void consume_replies(WorkerProc& worker) {
    std::size_t nl = 0;
    while (worker.alive &&
           (nl = worker.buf.find('\n')) != std::string::npos) {
      const std::string line = worker.buf.substr(0, nl);
      worker.buf.erase(0, nl + 1);
      std::size_t index = 0;
      char verb[8] = {0};
      if (std::sscanf(line.c_str(), "%7s %zu", verb, &index) != 2 ||
          !worker.inflight || *worker.inflight != index) {
        protocol_violation(worker);
        return;
      }
      const Clock::time_point now = Clock::now();
      const std::string verb_str(verb);
      if (verb_str == "start") {
        worker.last_progress = now;
        worker.inflight_start = now;
      } else if (verb_str == "hb") {
        worker.last_progress = now;
      } else if (verb_str == "done") {
        worker.last_progress = now;
        update_estimate(index, now - worker.inflight_start);
        worker.inflight.reset();
        shard_state_.erase(index);
        ++result_.shards_run;
        maybe_chaos_stop();
      } else {
        protocol_violation(worker);
        return;
      }
    }
  }

  void protocol_violation(WorkerProc& worker) {
    // Garbage or out-of-protocol reply: the worker is broken software,
    // not a crashed process — kill it and charge the shard as an exit.
    ::kill(worker.pid, SIGKILL);
    reap(worker, FailKind::kExit);
    if (may_respawn()) spawn();
  }

  void update_estimate(std::size_t index, Clock::duration elapsed) {
    const std::size_t variant = shards_[index].variant;
    const double sample =
        std::chrono::duration<double, std::milli>(elapsed).count();
    double& estimate = estimate_ms_[variant];
    estimate = estimate <= 0.0 ? sample : 0.5 * estimate + 0.5 * sample;
  }

  void maybe_chaos_stop() {
    if (options_.die_after_shards != 0 &&
        result_.shards_run >= options_.die_after_shards) {
      for (WorkerProc& worker : workers_) {
        if (worker.alive) ::kill(worker.pid, SIGKILL);
      }
      kill_self();
    }
    if (options_.stop_after_shards != 0 &&
        result_.shards_run >= options_.stop_after_shards) {
      stopping_ = true;
      pending_.clear();
    }
  }

  struct ShardState {
    std::size_t attempts{0};
    Clock::time_point eligible_at{};
  };

  const std::filesystem::path& dir_;
  const RunCampaignOptions& options_;
  const CampaignSpec& spec_;
  std::vector<ShardSpec> shards_;
  std::uint32_t generation_;
  std::deque<std::size_t> pending_;
  RunCampaignResult result_;
  std::vector<double> estimate_ms_;  ///< trailing per-variant runtime EWMA
  std::vector<WorkerProc> workers_;
  std::map<std::size_t, ShardState> shard_state_;  ///< failed shards only
  std::optional<SegmentWriter> quarantine_writer_;
  std::uint32_t next_worker_id_{0};
  unsigned respawn_budget_{0};
  bool stopping_{false};
};

RunCampaignResult run_in_process(const std::filesystem::path& dir,
                                 const RunCampaignOptions& options,
                                 std::uint32_t generation,
                                 const LoadedCampaign& campaign,
                                 const std::deque<std::size_t>& pending,
                                 RunCampaignResult result) {
  g_worker_sigterm = 0;
  ScopedSigterm sigterm(on_worker_sigterm);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  ShardRunner runner(campaign.spec, campaign.base);
  SegmentWriter writer(dir, SegmentId{generation, 0});
  std::size_t executed = 0;
  std::size_t last_index = 0;
  bool stopped = false;
  for (std::size_t index : pending) {
    if (g_worker_sigterm != 0) {
      stopped = true;
      break;
    }
    const ShardResult shard_result = runner.run(shards[index]);
    writer.append(RecordType::kShardResult,
                  encode_shard_result(shard_result));
    ++executed;
    last_index = index;
    ++result.shards_run;
    if (options.checkpoint_every != 0 &&
        executed % options.checkpoint_every == 0) {
      Checkpoint checkpoint;
      checkpoint.shards_completed = executed;
      checkpoint.last_shard = index;
      writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
    }
    if (options.die_after_shards != 0 &&
        result.shards_run >= options.die_after_shards) {
      kill_self();
    }
    if (options.stop_after_shards != 0 &&
        result.shards_run >= options.stop_after_shards) {
      stopped = true;
      break;
    }
  }
  if (stopped && executed != 0 && options.checkpoint_every != 0 &&
      executed % options.checkpoint_every != 0) {
    Checkpoint checkpoint;
    checkpoint.shards_completed = executed;
    checkpoint.last_shard = last_index;
    writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
  }
  const std::size_t accounted =
      result.shards_run + result.shards_already_complete +
      result.shards_already_quarantined + result.shards_quarantined;
  result.incomplete = accounted < result.shards_total;
  return result;
}

}  // namespace

void create_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                     const core::BanConfig& base) {
  write_campaign(dir, spec, base);
}

RunCampaignResult run_campaign(const std::filesystem::path& dir,
                               const RunCampaignOptions& options) {
  const LoadedCampaign campaign = load_campaign(dir);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  const StoreProgress progress = store_progress(dir);
  // Fail fast on a malformed chaos spec before any worker is spawned.
  (void)parse_worker_chaos(options.worker_chaos, true);

  RunCampaignResult result;
  result.generation = max_generation(dir) + 1;
  result.shards_total = shards.size();
  std::deque<std::size_t> pending;
  for (const ShardSpec& shard : shards) {
    if (progress.done.count(shard.index) != 0) {
      ++result.shards_already_complete;
    } else if (progress.quarantined.count(shard.index) != 0) {
      ++result.shards_already_quarantined;
    } else {
      pending.push_back(shard.index);
    }
  }
  if (pending.empty()) return result;

  if (options.workers == 0) {
    return run_in_process(dir, options, result.generation, campaign, pending,
                          result);
  }
  return MultiprocessRun(dir, options, campaign.spec, result.generation,
                         std::move(pending), std::move(result))
      .run();
}

int maybe_worker_main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) != kWorkerSentinel) return -1;
  if (argc != 9) {
    std::cerr << "worker mode needs <dir> <gen> <worker> <ckpt> <chaos> "
                 "<cpu_s> <mem_mb>\n";
    return 2;
  }
  try {
    return worker_main(argv[2],
                       static_cast<std::uint32_t>(std::stoul(argv[3])),
                       static_cast<std::uint32_t>(std::stoul(argv[4])),
                       std::stoul(argv[5]), argv[6],
                       static_cast<std::uint32_t>(std::stoul(argv[7])),
                       static_cast<std::uint32_t>(std::stoul(argv[8])));
  } catch (const std::exception& e) {
    std::cerr << "campaign worker failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace bansim::campaign
