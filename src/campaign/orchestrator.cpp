#include "campaign/orchestrator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"

namespace bansim::campaign {
namespace {

/// argv[1] sentinel that routes a re-exec'd child into worker mode.  The
/// double-underscore shape keeps it from colliding with any real CLI verb.
constexpr const char* kWorkerSentinel = "__bansim_campaign_worker__";

/// Shard index peeked from a kShardResult payload without full decode —
/// the completeness diff only needs the key.
[[nodiscard]] std::optional<std::uint64_t> peek_shard_index(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

/// Global shard indices already durable in the store.
[[nodiscard]] std::set<std::size_t> completed_shards(
    const std::filesystem::path& dir) {
  std::set<std::size_t> done;
  const StoreScan scan = scan_store(dir);
  for (const SegmentScan& segment : scan.segments) {
    for (const Record& record : segment.records) {
      if (record.type != RecordType::kShardResult) continue;
      if (const auto index = peek_shard_index(record.payload)) {
        done.insert(static_cast<std::size_t>(*index));
      }
    }
  }
  return done;
}

struct ChaosSpec {
  std::size_t ordinal{0};  ///< 1-based shard count at which to die (0 = off)
  enum class Mode { kMid, kTorn, kPost } mode{Mode::kMid};
};

[[nodiscard]] ChaosSpec parse_chaos(const std::string& text) {
  ChaosSpec chaos;
  if (text.empty() || text == "-") return chaos;
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    throw StoreError("worker chaos spec must be <ordinal>:<mode>, got '" +
                     text + "'");
  }
  chaos.ordinal = std::stoul(text.substr(0, colon));
  const std::string mode = text.substr(colon + 1);
  if (mode == "mid") {
    chaos.mode = ChaosSpec::Mode::kMid;
  } else if (mode == "torn") {
    chaos.mode = ChaosSpec::Mode::kTorn;
  } else if (mode == "post") {
    chaos.mode = ChaosSpec::Mode::kPost;
  } else {
    throw StoreError("worker chaos mode must be mid|torn|post, got '" + mode +
                     "'");
  }
  return chaos;
}

[[noreturn]] void kill_self() {
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; placate noreturn if the raise is blocked
}

/// The worker loop: read global shard indices off stdin (one per line),
/// execute each against warmed cells, append the result to this worker's
/// segment, reply "done <k>".  EOF on stdin is the normal shutdown.
int worker_main(const std::filesystem::path& dir, std::uint32_t generation,
                std::uint32_t worker_id, std::size_t checkpoint_every,
                const std::string& chaos_text) {
  const ChaosSpec chaos = parse_chaos(chaos_text);
  const LoadedCampaign campaign = load_campaign(dir);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  ShardRunner runner(campaign.spec, campaign.base);
  SegmentWriter writer(dir, SegmentId{generation, worker_id});

  std::size_t executed = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::size_t index = 0;
    try {
      index = std::stoul(line);
    } catch (const std::exception&) {
      std::cerr << "worker " << worker_id << ": bad shard index '" << line
                << "'\n";
      return 2;
    }
    if (index >= shards.size()) {
      std::cerr << "worker " << worker_id << ": shard " << index
                << " out of range (" << shards.size() << " planned)\n";
      return 2;
    }
    ++executed;
    const bool chaos_here = chaos.ordinal != 0 && executed == chaos.ordinal;
    if (chaos_here && chaos.mode == ChaosSpec::Mode::kMid) kill_self();

    const ShardResult result = runner.run(shards[index]);
    const std::vector<std::uint8_t> payload = encode_shard_result(result);
    if (chaos_here && chaos.mode == ChaosSpec::Mode::kTorn) {
      // Die mid-write: land the frame header plus half the payload, the
      // organic torn tail a SIGKILL during write() produces.
      writer.append_torn(RecordType::kShardResult, payload,
                         12 + payload.size() / 2);
      kill_self();
    }
    writer.append(RecordType::kShardResult, payload);
    if (chaos_here && chaos.mode == ChaosSpec::Mode::kPost) kill_self();

    if (checkpoint_every != 0 && executed % checkpoint_every == 0) {
      Checkpoint checkpoint;
      checkpoint.shards_completed = executed;
      checkpoint.last_shard = index;
      writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
    }
    std::cout << "done " << index << "\n" << std::flush;
  }
  return 0;
}

/// One spawned worker process and its work-queue plumbing.
struct WorkerProc {
  pid_t pid{-1};
  int to_child{-1};    ///< write end: shard assignments
  int from_child{-1};  ///< read end: "done <k>" replies
  std::uint32_t id{0};
  std::string buf;
  std::optional<std::size_t> inflight;
  bool alive{false};
};

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

[[nodiscard]] WorkerProc spawn_worker(const std::filesystem::path& dir,
                                      std::uint32_t generation,
                                      std::uint32_t worker_id,
                                      std::size_t checkpoint_every,
                                      const std::string& chaos) {
  int in_pipe[2];   // orchestrator -> worker stdin
  int out_pipe[2];  // worker stdout -> orchestrator
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) {
    throw StoreError(std::string("pipe: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw StoreError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string dir_str = dir.string();
    const std::string gen_str = std::to_string(generation);
    const std::string id_str = std::to_string(worker_id);
    const std::string ckpt_str = std::to_string(checkpoint_every);
    const std::string chaos_str = chaos.empty() ? "-" : chaos;
    const char* argv[] = {"bansim-campaign-worker",
                          kWorkerSentinel,
                          dir_str.c_str(),
                          gen_str.c_str(),
                          id_str.c_str(),
                          ckpt_str.c_str(),
                          chaos_str.c_str(),
                          nullptr};
    ::execv("/proc/self/exe", const_cast<char* const*>(argv));
    std::perror("execv /proc/self/exe");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  WorkerProc worker;
  worker.pid = pid;
  worker.to_child = in_pipe[1];
  worker.from_child = out_pipe[0];
  worker.id = worker_id;
  worker.alive = true;
  return worker;
}

/// Assigns the next pending shard, or closes the worker's queue when no
/// work remains.  Returns false when the write found the worker dead (the
/// shard goes back on the queue; the poll loop reaps the corpse).
bool dispatch(WorkerProc& worker, std::deque<std::size_t>& pending) {
  if (worker.inflight) return true;
  if (pending.empty()) {
    close_fd(worker.to_child);
    return true;
  }
  const std::size_t index = pending.front();
  const std::string line = std::to_string(index) + "\n";
  const ssize_t n = ::write(worker.to_child, line.data(), line.size());
  if (n != static_cast<ssize_t>(line.size())) return false;
  pending.pop_front();
  worker.inflight = index;
  return true;
}

RunCampaignResult run_multiprocess(const std::filesystem::path& dir,
                                   const RunCampaignOptions& options,
                                   std::uint32_t generation,
                                   std::deque<std::size_t> pending,
                                   RunCampaignResult result) {
  // A dead worker's queue pipe raises SIGPIPE on write; we want the EPIPE
  // return instead so the shard can be requeued.
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<WorkerProc> workers;
  std::uint32_t next_worker_id = 0;
  const auto spawn = [&] {
    const std::string chaos =
        next_worker_id == 0 ? options.worker_chaos : std::string{};
    workers.push_back(spawn_worker(dir, generation, next_worker_id++,
                                   options.checkpoint_every, chaos));
    ++result.workers_spawned;
  };
  const unsigned initial =
      std::min<unsigned>(options.workers,
                         static_cast<unsigned>(std::max<std::size_t>(
                             pending.size(), 1)));
  for (unsigned i = 0; i < initial; ++i) spawn();
  // A poison shard that kills every worker assigned to it would otherwise
  // respawn forever; after this many deaths the run gives up and returns
  // incomplete (resume can try again).
  const unsigned respawn_budget = 4 * options.workers + 8;

  const auto reap = [&](WorkerProc& worker) {
    worker.alive = false;
    close_fd(worker.to_child);
    close_fd(worker.from_child);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    ++result.workers_died;
    if (worker.inflight) {
      pending.push_front(*worker.inflight);
      worker.inflight.reset();
    }
  };

  bool stopping = false;
  const auto maybe_chaos_stop = [&] {
    if (options.die_after_shards != 0 &&
        result.shards_run >= options.die_after_shards) {
      for (WorkerProc& worker : workers) {
        if (worker.alive) ::kill(worker.pid, SIGKILL);
      }
      kill_self();
    }
    if (options.stop_after_shards != 0 &&
        result.shards_run >= options.stop_after_shards) {
      stopping = true;
      pending.clear();
    }
  };

  while (true) {
    // Keep every live worker fed (or its queue closed).
    for (WorkerProc& worker : workers) {
      if (worker.alive && !dispatch(worker, pending)) reap(worker);
    }
    std::size_t live = 0, busy = 0;
    for (const WorkerProc& worker : workers) {
      if (worker.alive) ++live;
      if (worker.alive && worker.inflight) ++busy;
    }
    if (pending.empty() && busy == 0) break;
    if (live == 0) {
      if (options.respawn_dead_workers &&
          result.workers_died < respawn_budget && !stopping) {
        spawn();
        continue;
      }
      result.incomplete = true;
      break;
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back(pollfd{workers[i].from_child, POLLIN, 0});
      fd_owner.push_back(i);
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw StoreError(std::string("poll: ") + std::strerror(errno));
    }
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerProc& worker = workers[fd_owner[f]];
      char chunk[256];
      const ssize_t n = ::read(worker.from_child, chunk, sizeof chunk);
      if (n <= 0) {
        reap(worker);
        if (options.respawn_dead_workers &&
            result.workers_died < respawn_budget && !stopping &&
            !pending.empty()) {
          spawn();
        }
        continue;
      }
      worker.buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = worker.buf.find('\n')) != std::string::npos) {
        const std::string line = worker.buf.substr(0, nl);
        worker.buf.erase(0, nl + 1);
        std::size_t index = 0;
        if (std::sscanf(line.c_str(), "done %zu", &index) != 1 ||
            !worker.inflight || *worker.inflight != index) {
          // Garbage or out-of-protocol reply: treat the worker as broken.
          ::kill(worker.pid, SIGKILL);
          reap(worker);
          break;
        }
        worker.inflight.reset();
        ++result.shards_run;
        maybe_chaos_stop();
      }
    }
  }

  for (WorkerProc& worker : workers) {
    if (!worker.alive) continue;
    close_fd(worker.to_child);
    close_fd(worker.from_child);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
  }
  result.incomplete = result.incomplete || stopping ||
                      result.shards_run + result.shards_already_complete <
                          result.shards_total;
  return result;
}

RunCampaignResult run_in_process(const std::filesystem::path& dir,
                                 const RunCampaignOptions& options,
                                 std::uint32_t generation,
                                 const LoadedCampaign& campaign,
                                 const std::deque<std::size_t>& pending,
                                 RunCampaignResult result) {
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  ShardRunner runner(campaign.spec, campaign.base);
  SegmentWriter writer(dir, SegmentId{generation, 0});
  std::size_t executed = 0;
  for (std::size_t index : pending) {
    const ShardResult shard_result = runner.run(shards[index]);
    writer.append(RecordType::kShardResult,
                  encode_shard_result(shard_result));
    ++executed;
    ++result.shards_run;
    if (options.checkpoint_every != 0 &&
        executed % options.checkpoint_every == 0) {
      Checkpoint checkpoint;
      checkpoint.shards_completed = executed;
      checkpoint.last_shard = index;
      writer.append(RecordType::kCheckpoint, encode_checkpoint(checkpoint));
    }
    if (options.die_after_shards != 0 &&
        result.shards_run >= options.die_after_shards) {
      kill_self();
    }
    if (options.stop_after_shards != 0 &&
        result.shards_run >= options.stop_after_shards) {
      result.incomplete =
          result.shards_run + result.shards_already_complete <
          result.shards_total;
      return result;
    }
  }
  return result;
}

}  // namespace

void create_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                     const core::BanConfig& base) {
  write_campaign(dir, spec, base);
}

RunCampaignResult run_campaign(const std::filesystem::path& dir,
                               const RunCampaignOptions& options) {
  const LoadedCampaign campaign = load_campaign(dir);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  const std::set<std::size_t> done = completed_shards(dir);

  RunCampaignResult result;
  result.generation = max_generation(dir) + 1;
  result.shards_total = shards.size();
  std::deque<std::size_t> pending;
  for (const ShardSpec& shard : shards) {
    if (done.count(shard.index) != 0) {
      ++result.shards_already_complete;
    } else {
      pending.push_back(shard.index);
    }
  }
  if (pending.empty()) return result;

  if (options.workers == 0) {
    return run_in_process(dir, options, result.generation, campaign, pending,
                          result);
  }
  return run_multiprocess(dir, options, result.generation, std::move(pending),
                          result);
}

int maybe_worker_main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) != kWorkerSentinel) return -1;
  if (argc != 7) {
    std::cerr << "worker mode needs <dir> <gen> <worker> <ckpt> <chaos>\n";
    return 2;
  }
  try {
    return worker_main(argv[2],
                       static_cast<std::uint32_t>(std::stoul(argv[3])),
                       static_cast<std::uint32_t>(std::stoul(argv[4])),
                       std::stoul(argv[5]), argv[6]);
  } catch (const std::exception& e) {
    std::cerr << "campaign worker failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace bansim::campaign
