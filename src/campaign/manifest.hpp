// Campaign manifest: the persistent definition of a scenario space.
//
// A campaign directory is created once (`bansim_campaign run`) and then
// only ever appended to; the manifest is what makes every later `resume`
// re-derive exactly the same work.  It pins
//   * the base ward config (base_config.ini, CRC'd from the manifest so a
//     hand-edited config cannot silently change what "the same campaign"
//     means),
//   * the scenario axes — population size, base seeds, MAC protocols,
//     fault-plan on/off — whose cross product forms the variant list,
//   * the per-patient measurement window and CDF binning, and
//   * the shard size that partitions each variant's patients.
//
// Shard k is a pure function of the manifest: variant axes are crossed in
// a fixed order (protocol-major, then seed, then fault mode) and patients
// are chunked in index order, so the global shard index k names the same
// (variant, patient range) forever.  That purity is the whole recovery
// story — a shard result lost to a crash is simply recomputed, and the
// recomputation is bit-identical.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/population.hpp"
#include "mac/mac_base.hpp"
#include "sim/time.hpp"

namespace bansim::campaign {

/// The scenario-space axes and execution grain.  Everything here round-
/// trips through manifest.ini.
struct CampaignSpec {
  /// Patients per variant (each variant runs the full population).
  std::size_t patients{1000};
  /// Patients per shard — the unit of work, loss, and recovery.
  std::size_t shard_size{250};

  /// Scenario axes.  The variant list is their cross product in this
  /// fixed nesting order: for each protocol, for each seed, for each
  /// fault mode.
  std::vector<mac::Protocol> protocols{mac::Protocol::kStaticTdma};
  std::vector<std::uint64_t> seeds{1};
  /// Fault-plan master-switch values (false = plan disabled).  A `true`
  /// entry only changes behaviour when the base config carries fault
  /// content, but it always changes network *shape*, so each fault mode
  /// gets its own warmed cells.
  std::vector<bool> fault_modes{false};

  /// Per-patient physiology sampling: motion episodes on/off (the one
  /// PopulationConfig knob campaigns vary; the rest keep library
  /// defaults so the manifest stays small and version-stable).
  bool motion{false};

  /// Per-patient measurement window.
  sim::Duration measure{sim::Duration::seconds(30)};
  sim::Duration settle{sim::Duration::seconds(1)};
  sim::Duration join_deadline{sim::Duration::seconds(30)};

  std::size_t cdf_bins{64};

  /// Worker-health policy (DESIGN.md §5i).  Part of the campaign
  /// definition so a resume retries and times out shards exactly the way
  /// the original run did.
  /// Failed attempts (hang, crash, nonzero exit) a shard may consume
  /// before it is quarantined and skipped by every later resume.
  std::size_t retry_budget{3};
  /// Per-shard wall-clock deadline = clamp(deadline_factor x trailing
  /// per-variant runtime estimate, floor, ceiling); the ceiling alone
  /// applies while a variant has no estimate yet.  The deadline bounds
  /// the gap between worker heartbeats (per-patient), not just whole
  /// shards, so long shards stay safe as long as they make progress.
  std::uint32_t deadline_floor_ms{2000};
  std::uint32_t deadline_ceiling_ms{60000};
  double deadline_factor{4.0};

  [[nodiscard]] std::size_t variant_count() const {
    return protocols.size() * seeds.size() * fault_modes.size();
  }

  /// Empty when well-formed, else the first problem.
  [[nodiscard]] std::string validate() const;
};

/// One point of the scenario cross product.
struct VariantSpec {
  std::size_t index{0};
  mac::Protocol protocol{mac::Protocol::kStaticTdma};
  std::uint64_t seed{1};
  bool faults{false};

  /// Stable one-token label, e.g. "static_tdma/s1/faults" — used by the
  /// report and CSV export.
  [[nodiscard]] std::string label() const;
};

/// The cross product in manifest order (protocol-major, then seed, then
/// fault mode).
[[nodiscard]] std::vector<VariantSpec> variants(const CampaignSpec& spec);

/// Derives one variant's ward config from the campaign's base config.
[[nodiscard]] core::BanConfig variant_config(const core::BanConfig& base,
                                             const VariantSpec& variant);

/// The PopulationConfig every variant samples patients from.
[[nodiscard]] core::PopulationConfig population_config(
    const CampaignSpec& spec);

/// One unit of work: `count` consecutive patients of one variant.
struct ShardSpec {
  std::size_t index{0};    ///< global shard index — the store key
  std::size_t variant{0};  ///< into variants(spec)
  std::size_t first{0};    ///< first patient index
  std::size_t count{0};
};

/// All shards of the campaign, in global-index order (variant-major,
/// patient-range-minor).
[[nodiscard]] std::vector<ShardSpec> plan_shards(const CampaignSpec& spec);

/// Writes manifest.ini + base_config.ini into `dir` (creating it).
/// Throws StoreError when the directory already holds a manifest, or when
/// spec/base fail validation.
void write_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                    const core::BanConfig& base);

struct LoadedCampaign {
  CampaignSpec spec;
  core::BanConfig base;
};

/// Reads manifest.ini + base_config.ini back.  Hard StoreError on missing
/// files, unknown keys, format-version mismatch, or a base_config.ini
/// whose CRC no longer matches the manifest's fingerprint.
[[nodiscard]] LoadedCampaign load_campaign(const std::filesystem::path& dir);

}  // namespace bansim::campaign
