#include "campaign/manifest.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "campaign/store.hpp"

namespace bansim::campaign {
namespace {

constexpr const char* kManifestName = "manifest.ini";
constexpr const char* kBaseConfigName = "base_config.ini";

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) throw StoreError("cannot write " + path.string());
}

[[nodiscard]] std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = item.find_last_not_of(" \t");
    out.push_back(item.substr(first, last - first + 1));
  }
  return out;
}

template <typename T>
[[nodiscard]] std::string join_csv(const std::vector<T>& items,
                                   const char* (*token)(T)) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += token(items[i]);
  }
  return out;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& key,
                                      const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(value, &pos, 0);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw StoreError("manifest: bad integer for " + key + ": '" + value + "'");
  }
}

}  // namespace

std::string CampaignSpec::validate() const {
  if (patients == 0) return "campaign: patients must be > 0";
  if (shard_size == 0) return "campaign: shard_size must be > 0";
  if (protocols.empty()) return "campaign: need at least one protocol";
  if (seeds.empty()) return "campaign: need at least one seed";
  if (fault_modes.empty()) return "campaign: need at least one fault mode";
  if (!measure.is_positive()) return "campaign: measure must be > 0";
  if (cdf_bins == 0) return "campaign: cdf_bins must be > 0";
  if (retry_budget == 0) return "campaign: retry_budget must be > 0";
  if (deadline_floor_ms == 0) {
    return "campaign: deadline_floor_ms must be > 0";
  }
  if (deadline_ceiling_ms < deadline_floor_ms) {
    return "campaign: deadline_ceiling_ms must be >= deadline_floor_ms";
  }
  if (!(deadline_factor >= 1.0)) {
    return "campaign: deadline_factor must be >= 1";
  }
  return "";
}

std::string VariantSpec::label() const {
  std::ostringstream out;
  out << mac::to_string(protocol) << "/s" << seed
      << (faults ? "/faults" : "/clean");
  return out.str();
}

std::vector<VariantSpec> variants(const CampaignSpec& spec) {
  std::vector<VariantSpec> out;
  out.reserve(spec.variant_count());
  for (mac::Protocol protocol : spec.protocols) {
    for (std::uint64_t seed : spec.seeds) {
      for (bool faults : spec.fault_modes) {
        VariantSpec v;
        v.index = out.size();
        v.protocol = protocol;
        v.seed = seed;
        v.faults = faults;
        out.push_back(v);
      }
    }
  }
  return out;
}

core::BanConfig variant_config(const core::BanConfig& base,
                               const VariantSpec& variant) {
  core::BanConfig config = base;
  core::apply_mac_protocol(config, variant.protocol);
  config.seed = variant.seed;
  config.fault_plan.enabled = variant.faults;
  return config;
}

core::PopulationConfig population_config(const CampaignSpec& spec) {
  core::PopulationConfig population;
  population.motion = spec.motion;
  return population;
}

std::vector<ShardSpec> plan_shards(const CampaignSpec& spec) {
  std::vector<ShardSpec> out;
  const std::size_t per_variant =
      (spec.patients + spec.shard_size - 1) / spec.shard_size;
  out.reserve(per_variant * spec.variant_count());
  for (std::size_t v = 0; v < spec.variant_count(); ++v) {
    for (std::size_t first = 0; first < spec.patients;
         first += spec.shard_size) {
      ShardSpec shard;
      shard.index = out.size();
      shard.variant = v;
      shard.first = first;
      shard.count = std::min(spec.shard_size, spec.patients - first);
      out.push_back(shard);
    }
  }
  return out;
}

void write_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                    const core::BanConfig& base) {
  const std::string problem = spec.validate();
  if (!problem.empty()) throw StoreError(problem);
  std::filesystem::create_directories(dir);
  if (std::filesystem::exists(dir / kManifestName)) {
    throw StoreError("campaign directory " + dir.string() +
                     " already holds a manifest; resume it instead");
  }
  const std::string base_text = core::serialize_config(base);
  write_file(dir / kBaseConfigName, base_text);

  std::ostringstream out;
  out << "format = " << kStoreFormatVersion << "\n";
  out << "patients = " << spec.patients << "\n";
  out << "shard_size = " << spec.shard_size << "\n";
  out << "protocols = "
      << join_csv<mac::Protocol>(spec.protocols, mac::to_string) << "\n";
  out << "seeds =";
  for (std::size_t i = 0; i < spec.seeds.size(); ++i) {
    out << (i == 0 ? " " : ",") << spec.seeds[i];
  }
  out << "\n";
  out << "fault_modes =";
  for (std::size_t i = 0; i < spec.fault_modes.size(); ++i) {
    out << (i == 0 ? " " : ",") << (spec.fault_modes[i] ? "on" : "off");
  }
  out << "\n";
  out << "motion = " << (spec.motion ? "true" : "false") << "\n";
  out.precision(17);  // durations round-trip exactly through the text form
  out << "measure_ms = " << spec.measure.to_seconds() * 1e3 << "\n";
  out << "settle_ms = " << spec.settle.to_seconds() * 1e3 << "\n";
  out << "join_deadline_ms = " << spec.join_deadline.to_seconds() * 1e3
      << "\n";
  out << "cdf_bins = " << spec.cdf_bins << "\n";
  out << "retry_budget = " << spec.retry_budget << "\n";
  out << "deadline_floor_ms = " << spec.deadline_floor_ms << "\n";
  out << "deadline_ceiling_ms = " << spec.deadline_ceiling_ms << "\n";
  out << "deadline_factor = " << spec.deadline_factor << "\n";
  out << "base_config_crc = " << crc32(base_text) << "\n";
  write_file(dir / kManifestName, out.str());
}

LoadedCampaign load_campaign(const std::filesystem::path& dir) {
  const std::string text = read_file(dir / kManifestName);
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw StoreError("manifest line " + std::to_string(lineno) +
                       ": expected key = value");
    }
    const auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      if (b == std::string::npos) return std::string{};
      const auto e = s.find_last_not_of(" \t\r");
      return s.substr(b, e - b + 1);
    };
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }

  const auto take = [&](const char* key) {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw StoreError(std::string("manifest: missing key ") + key);
    }
    const std::string value = it->second;
    kv.erase(it);
    return value;
  };

  const std::uint64_t format = parse_u64("format", take("format"));
  if (format != kStoreFormatVersion) {
    throw StoreError("manifest format version " + std::to_string(format) +
                     "; this build reads version " +
                     std::to_string(kStoreFormatVersion));
  }

  CampaignSpec spec;
  spec.patients = parse_u64("patients", take("patients"));
  spec.shard_size = parse_u64("shard_size", take("shard_size"));
  spec.protocols.clear();
  for (const std::string& token : split_csv(take("protocols"))) {
    spec.protocols.push_back(core::parse_mac_protocol(token));
  }
  spec.seeds.clear();
  for (const std::string& token : split_csv(take("seeds"))) {
    spec.seeds.push_back(parse_u64("seeds", token));
  }
  spec.fault_modes.clear();
  for (const std::string& token : split_csv(take("fault_modes"))) {
    if (token == "on") {
      spec.fault_modes.push_back(true);
    } else if (token == "off") {
      spec.fault_modes.push_back(false);
    } else {
      throw StoreError("manifest: fault_modes entries must be on|off, got '" +
                       token + "'");
    }
  }
  const std::string motion = take("motion");
  if (motion != "true" && motion != "false") {
    throw StoreError("manifest: motion must be true|false, got '" + motion +
                     "'");
  }
  spec.motion = motion == "true";
  const auto take_ms = [&](const char* key) {
    const std::string value = take(key);
    try {
      std::size_t pos = 0;
      const double ms = std::stod(value, &pos);
      if (pos != value.size()) throw std::invalid_argument(value);
      return sim::Duration::from_milliseconds(ms);
    } catch (const std::exception&) {
      throw StoreError(std::string("manifest: bad duration for ") + key +
                       ": '" + value + "'");
    }
  };
  spec.measure = take_ms("measure_ms");
  spec.settle = take_ms("settle_ms");
  spec.join_deadline = take_ms("join_deadline_ms");
  spec.cdf_bins = parse_u64("cdf_bins", take("cdf_bins"));
  // Worker-health knobs were added after the first stores shipped; a
  // manifest without them loads with the library defaults.
  const auto take_optional = [&](const char* key) -> std::optional<std::string> {
    const auto it = kv.find(key);
    if (it == kv.end()) return std::nullopt;
    std::string value = it->second;
    kv.erase(it);
    return value;
  };
  if (const auto v = take_optional("retry_budget")) {
    spec.retry_budget = parse_u64("retry_budget", *v);
  }
  if (const auto v = take_optional("deadline_floor_ms")) {
    spec.deadline_floor_ms =
        static_cast<std::uint32_t>(parse_u64("deadline_floor_ms", *v));
  }
  if (const auto v = take_optional("deadline_ceiling_ms")) {
    spec.deadline_ceiling_ms =
        static_cast<std::uint32_t>(parse_u64("deadline_ceiling_ms", *v));
  }
  if (const auto v = take_optional("deadline_factor")) {
    try {
      std::size_t pos = 0;
      spec.deadline_factor = std::stod(*v, &pos);
      if (pos != v->size()) throw std::invalid_argument(*v);
    } catch (const std::exception&) {
      throw StoreError("manifest: bad number for deadline_factor: '" + *v +
                       "'");
    }
  }
  const std::uint64_t want_crc =
      parse_u64("base_config_crc", take("base_config_crc"));

  if (!kv.empty()) {
    throw StoreError("manifest: unknown key '" + kv.begin()->first + "'");
  }
  const std::string problem = spec.validate();
  if (!problem.empty()) throw StoreError(problem);

  const std::string base_text = read_file(dir / kBaseConfigName);
  if (crc32(base_text) != want_crc) {
    throw StoreError(
        "base_config.ini does not match the manifest fingerprint — the "
        "campaign definition was edited after creation");
  }
  LoadedCampaign loaded;
  loaded.spec = spec;
  try {
    loaded.base = core::parse_config(base_text);
  } catch (const core::ConfigError& e) {
    throw StoreError(std::string("base_config.ini: ") + e.what());
  }
  return loaded;
}

}  // namespace bansim::campaign
