// Shard execution and the shard-result wire/disk codec.
//
// A shard is `count` consecutive patients of one variant.  ShardRunner
// executes shards with per-variant warmed cells: the first patient of a
// variant builds a BanNetwork, every later patient (across all shards of
// that variant this process runs) resets it in place.  Because
// PatientRunner::run(i) is a pure function of (generator, window, i), a
// shard's rows are bit-identical whichever process runs it and however
// shards are interleaved — the property every resume/equality test pins.
//
// Row payloads are encoded bit-exactly: doubles travel as their IEEE-754
// u64 bit patterns (little-endian), never through text, so a decoded row
// compares exact-double equal to the row the worker measured.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "campaign/manifest.hpp"
#include "core/population.hpp"
#include "energy/campaign_columns.hpp"

namespace bansim::campaign {

/// One shard's complete output: the global shard index plus one row per
/// patient, in patient order.
struct ShardResult {
  std::uint64_t shard{0};
  std::vector<energy::CampaignRunRow> rows;

  [[nodiscard]] bool operator==(const ShardResult&) const = default;
};

/// kShardResult payload codec.  decode throws StoreError on a malformed
/// payload (only reachable if a CRC-valid record carries a bad length —
/// i.e. a writer bug, not disk corruption).
[[nodiscard]] std::vector<std::uint8_t> encode_shard_result(
    const ShardResult& result);
[[nodiscard]] ShardResult decode_shard_result(
    const std::vector<std::uint8_t>& payload);

/// kCheckpoint payload: a worker's progress watermark.  Checkpoints carry
/// no result data — they exist so `verify` can cross-check that a cleanly
/// finished segment saw as many shards as its writer recorded, and so a
/// torn tail can be localised ("died after checkpoint at N shards").
struct Checkpoint {
  std::uint64_t shards_completed{0};  ///< by this worker, this segment
  std::uint64_t last_shard{0};        ///< global index of the latest one

  [[nodiscard]] bool operator==(const Checkpoint&) const = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const Checkpoint& checkpoint);
[[nodiscard]] Checkpoint decode_checkpoint(
    const std::vector<std::uint8_t>& payload);

/// kQuarantine payload: a shard the orchestrator gave up on after its
/// retry budget.  Resume skips quarantined shards; report/verify surface
/// them as explicit gaps.  The shard index leads the payload (like a
/// shard record) so index-peeking code treats both types uniformly.
struct QuarantineRecord {
  std::uint64_t shard{0};
  /// Failed attempts consumed before quarantine (== the retry budget for
  /// organic quarantines; 0 for operator-seeded ones).
  std::uint32_t attempts{0};
  enum class Reason : std::uint16_t {
    kManual = 0,  ///< pre-seeded by an operator, not by a failure
    kHang = 1,    ///< watchdog SIGKILL after a missed deadline
    kCrash = 2,   ///< worker died by signal while the shard was in flight
    kExit = 3,    ///< worker exited nonzero while the shard was in flight
  };
  Reason reason{Reason::kManual};

  [[nodiscard]] bool operator==(const QuarantineRecord&) const = default;
};

[[nodiscard]] const char* to_string(QuarantineRecord::Reason reason);

[[nodiscard]] std::vector<std::uint8_t> encode_quarantine(
    const QuarantineRecord& record);
[[nodiscard]] QuarantineRecord decode_quarantine(
    const std::vector<std::uint8_t>& payload);

/// Executes shards against one campaign definition, reusing warmed cells
/// per variant.  Not thread-safe; one runner per worker (process or
/// in-process loop).
class ShardRunner {
 public:
  ShardRunner(CampaignSpec spec, core::BanConfig base);

  /// Runs every patient of the shard and returns their rows in patient
  /// order.
  [[nodiscard]] ShardResult run(const ShardSpec& shard);

  /// Called after each completed patient with the count of patients done
  /// in the current shard — the worker's heartbeat hook.  The callback
  /// must not observe or perturb simulation state (rows stay bit-exact).
  void set_progress(std::function<void(std::size_t)> callback) {
    progress_ = std::move(callback);
  }

  /// Patient runs that reused (reset) a warmed cell instead of building.
  [[nodiscard]] std::size_t runs_reused() const;

 private:
  CampaignSpec spec_;
  core::BanConfig base_;
  std::vector<VariantSpec> variants_;
  core::PatientWindow window_;
  /// Lazily built per variant index — a variant's generator and warmed
  /// cell come into being the first time a shard of that variant runs
  /// here.
  std::map<std::size_t, core::PopulationGenerator> generators_;
  std::map<std::size_t, core::PatientRunner> runners_;
  std::function<void(std::size_t)> progress_;
};

}  // namespace bansim::campaign
