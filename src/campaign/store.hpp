// Append-only on-disk campaign store: CRC-framed segment files.
//
// A campaign directory accumulates results in `segments/`: one append-only
// file per (generation, worker), where the generation counts run/resume
// invocations and the worker id is unique within a generation.  Workers
// never write the same file, so there is no cross-process locking — crash
// isolation falls out of the layout.  Each segment is a fixed header
// followed by CRC32-framed records; a record becomes durable the instant
// its last byte hits the file, and a SIGKILL mid-write leaves a torn tail
// the scanner treats exactly like a shorter file.
//
// Scan semantics (the crash-recovery contract):
//  * a segment is read as its longest valid prefix — the first framing
//    error (short header, short record, CRC mismatch) ends the segment,
//    and everything after it is unreachable;
//  * an unreachable or missing shard record simply means "incomplete":
//    resume re-runs that shard into a new generation, and the re-run is
//    bit-identical because shards are pure functions of the manifest;
//  * duplicate records for one shard (a resume that re-ran a shard whose
//    old record later became readable again) resolve last-writer-wins by
//    (generation, worker, file order);
//  * a header whose format version differs is a hard error (StoreError) —
//    new code must never silently misread an old store, or vice versa.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace bansim::campaign {

class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& message)
      : std::runtime_error(message) {}
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte span — the frame
/// checksum and the manifest's base-config fingerprint.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(const std::string& text);

/// On-disk format version of segment files (and the manifest).  Bump on
/// any layout change; readers hard-error on mismatch.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

enum class RecordType : std::uint16_t {
  kShardResult = 1,
  kCheckpoint = 2,
  /// A shard that exhausted its retry budget (repeated hang, crash, or
  /// nonzero worker exit).  Written by the orchestrator, skipped by
  /// subsequent resumes, surfaced by report/verify as gap accounting.
  kQuarantine = 3,
};

/// One decoded record frame (payload still opaque bytes).
struct Record {
  RecordType type{RecordType::kShardResult};
  std::vector<std::uint8_t> payload;
};

/// Identity of one segment file, parsed back out of its header.
struct SegmentId {
  std::uint32_t generation{0};
  std::uint32_t worker{0};

  [[nodiscard]] bool operator<(const SegmentId& other) const {
    return generation != other.generation ? generation < other.generation
                                          : worker < other.worker;
  }
  [[nodiscard]] bool operator==(const SegmentId& other) const = default;
};

/// Appends records to one segment file.  Each record is staged into one
/// buffer and written with a single sequential write so a kill can only
/// tear the file's tail, never interleave two records.
class SegmentWriter {
 public:
  /// Creates `segments/gen<G>-w<W>.seg` under `dir` (the campaign
  /// directory) and writes the header.  Throws StoreError if the file
  /// already exists — generations exist so that no writer ever appends to
  /// another run's segment.
  SegmentWriter(const std::filesystem::path& dir, SegmentId id);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one framed record and flushes it to the file.
  void append(RecordType type, const std::vector<std::uint8_t>& payload);

  /// Test seam for torn-tail batteries: appends only the first `bytes`
  /// bytes of the frame that append() would have written, then flushes —
  /// the file now ends mid-record, as after a SIGKILL mid-write.
  void append_torn(RecordType type, const std::vector<std::uint8_t>& payload,
                   std::size_t bytes);

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] const SegmentId& id() const { return id_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t size);

  std::filesystem::path path_;
  SegmentId id_;
  int fd_{-1};
};

/// One scanned segment: its valid-prefix records plus why scanning
/// stopped.
struct SegmentScan {
  std::filesystem::path path;
  SegmentId id;
  std::vector<Record> records;
  /// Empty when the segment ended cleanly at EOF; otherwise a one-line
  /// description of the torn/corrupt tail (offset + reason).  Records
  /// before the tear are still valid.
  std::string tail_error;
  /// Bytes of the file that verified (header + valid records).
  std::uint64_t valid_bytes{0};
  /// Total file size; > valid_bytes exactly when tail_error is set.
  std::uint64_t file_bytes{0};
};

/// Scan of a whole campaign directory's segments, ordered by SegmentId.
struct StoreScan {
  std::vector<SegmentScan> segments;

  [[nodiscard]] std::size_t total_records() const {
    std::size_t n = 0;
    for (const auto& s : segments) n += s.records.size();
    return n;
  }
  [[nodiscard]] bool any_tail_error() const {
    for (const auto& s : segments) {
      if (!s.tail_error.empty()) return true;
    }
    return false;
  }
};

/// The segments/ subdirectory of a campaign directory.
[[nodiscard]] std::filesystem::path segments_dir(
    const std::filesystem::path& dir);

/// Reads one segment as its longest valid prefix.  Throws StoreError only
/// for a version-mismatch header; every other malformation (short file,
/// bad magic, bad CRC) is reported via tail_error with zero or more valid
/// records, because a torn file is an expected crash artifact while a
/// wrong version is an operator error.
[[nodiscard]] SegmentScan scan_segment(const std::filesystem::path& path);

/// Scans every `*.seg` under segments/, ordered by (generation, worker).
/// A missing segments/ directory scans as empty (a created-but-never-run
/// campaign).
[[nodiscard]] StoreScan scan_store(const std::filesystem::path& dir);

/// Highest generation among existing segment files (0 when none) — the
/// next run/resume writes generation max+1.
[[nodiscard]] std::uint32_t max_generation(const std::filesystem::path& dir);

}  // namespace bansim::campaign
