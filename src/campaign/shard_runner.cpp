#include "campaign/shard_runner.hpp"

#include <bit>
#include <stdexcept>

#include "campaign/store.hpp"

namespace bansim::campaign {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[off_ + static_cast<std::size_t>(
                                                        i)])
           << (8 * i);
    }
    off_ += 8;
    return v;
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               bytes_[off_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off_ += 4;
    return v;
  }
  [[nodiscard]] std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>(bytes_[off_] |
                                              (bytes_[off_ + 1] << 8));
    off_ += 2;
    return v;
  }
  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[off_++];
  }
  void expect_end() const {
    if (off_ != bytes_.size()) {
      throw StoreError("shard payload has trailing bytes");
    }
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - off_ < n) {
      throw StoreError("shard payload truncated");
    }
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t off_{0};
};

}  // namespace

std::vector<std::uint8_t> encode_shard_result(const ShardResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + result.rows.size() * 80);
  put_u64(out, result.shard);
  put_u64(out, result.rows.size());
  for (const energy::CampaignRunRow& row : result.rows) {
    put_u64(out, row.seed);
    put_f64(out, row.total_mj);
    put_f64(out, row.radio_mj);
    put_f64(out, row.mcu_mj);
    put_f64(out, row.asic_mj);
    put_f64(out, row.lifetime_hours);
    put_f64(out, row.join_ms);
    put_u64(out, row.data_packets);
    put_u64(out, row.delivered_packets);
    out.push_back(row.joined ? 1 : 0);
  }
  return out;
}

ShardResult decode_shard_result(const std::vector<std::uint8_t>& payload) {
  PayloadReader in(payload);
  ShardResult result;
  result.shard = in.u64();
  const std::uint64_t rows = in.u64();
  // A CRC-valid record can still carry an absurd count if the writer was
  // buggy; bound it by what the payload could physically hold.
  if (rows > payload.size() / 73) {
    throw StoreError("shard payload row count exceeds payload size");
  }
  result.rows.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    energy::CampaignRunRow row;
    row.seed = in.u64();
    row.total_mj = in.f64();
    row.radio_mj = in.f64();
    row.mcu_mj = in.f64();
    row.asic_mj = in.f64();
    row.lifetime_hours = in.f64();
    row.join_ms = in.f64();
    row.data_packets = in.u64();
    row.delivered_packets = in.u64();
    row.joined = in.u8() != 0;
    result.rows.push_back(row);
  }
  in.expect_end();
  return result;
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  put_u64(out, checkpoint.shards_completed);
  put_u64(out, checkpoint.last_shard);
  return out;
}

Checkpoint decode_checkpoint(const std::vector<std::uint8_t>& payload) {
  PayloadReader in(payload);
  Checkpoint checkpoint;
  checkpoint.shards_completed = in.u64();
  checkpoint.last_shard = in.u64();
  in.expect_end();
  return checkpoint;
}

const char* to_string(QuarantineRecord::Reason reason) {
  switch (reason) {
    case QuarantineRecord::Reason::kManual:
      return "manual";
    case QuarantineRecord::Reason::kHang:
      return "hang";
    case QuarantineRecord::Reason::kCrash:
      return "crash";
    case QuarantineRecord::Reason::kExit:
      return "exit";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_quarantine(const QuarantineRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(14);
  put_u64(out, record.shard);
  put_u32(out, record.attempts);
  put_u16(out, static_cast<std::uint16_t>(record.reason));
  return out;
}

QuarantineRecord decode_quarantine(const std::vector<std::uint8_t>& payload) {
  PayloadReader in(payload);
  QuarantineRecord record;
  record.shard = in.u64();
  record.attempts = in.u32();
  const std::uint16_t reason = in.u16();
  if (reason > static_cast<std::uint16_t>(QuarantineRecord::Reason::kExit)) {
    throw StoreError("quarantine payload has unknown reason " +
                     std::to_string(reason));
  }
  record.reason = static_cast<QuarantineRecord::Reason>(reason);
  in.expect_end();
  return record;
}

ShardRunner::ShardRunner(CampaignSpec spec, core::BanConfig base)
    : spec_(std::move(spec)),
      base_(std::move(base)),
      variants_(variants(spec_)) {
  window_.measure = spec_.measure;
  window_.settle = spec_.settle;
  window_.join_deadline = spec_.join_deadline;
}

ShardResult ShardRunner::run(const ShardSpec& shard) {
  if (shard.variant >= variants_.size()) {
    throw std::out_of_range("shard names variant " +
                            std::to_string(shard.variant) + " of " +
                            std::to_string(variants_.size()));
  }
  auto gen_it = generators_.find(shard.variant);
  if (gen_it == generators_.end()) {
    gen_it = generators_
                 .emplace(shard.variant,
                          core::PopulationGenerator{
                              variant_config(base_, variants_[shard.variant]),
                              population_config(spec_)})
                 .first;
  }
  core::PatientRunner& runner = runners_[shard.variant];
  ShardResult result;
  result.shard = shard.index;
  result.rows.reserve(shard.count);
  for (std::size_t i = 0; i < shard.count; ++i) {
    result.rows.push_back(
        runner.run(gen_it->second, window_, shard.first + i));
    if (progress_) progress_(i + 1);
  }
  return result;
}

std::size_t ShardRunner::runs_reused() const {
  std::size_t reused = 0;
  for (const auto& [variant, runner] : runners_) reused += runner.runs_reused();
  return reused;
}

}  // namespace bansim::campaign
