#include "campaign/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace bansim::campaign {
namespace {

/// Fixed-point formatting for the report (3 decimals) — enough to read,
/// stable across platforms for the same double.
[[nodiscard]] std::string fixed3(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << v;
  return out.str();
}

/// Round-trip-exact double formatting for the CSV.
[[nodiscard]] std::string exact(double v) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << v;
  return out.str();
}

}  // namespace

CollectedResults collect_results(const std::filesystem::path& dir) {
  CollectedResults collected;
  const StoreScan scan = scan_store(dir);
  for (const SegmentScan& segment : scan.segments) {
    for (const Record& record : segment.records) {
      if (record.type == RecordType::kShardResult) {
        try {
          ShardResult result = decode_shard_result(record.payload);
          const auto index = static_cast<std::size_t>(result.shard);
          if (collected.by_shard.count(index) != 0) ++collected.duplicates;
          collected.by_shard[index] = std::move(result);
        } catch (const StoreError& e) {
          collected.decode_errors.push_back(segment.path.filename().string() +
                                            ": " + e.what());
        }
      } else if (record.type == RecordType::kQuarantine) {
        try {
          const QuarantineRecord q = decode_quarantine(record.payload);
          collected.quarantined[static_cast<std::size_t>(q.shard)] = q;
        } catch (const StoreError& e) {
          collected.decode_errors.push_back(segment.path.filename().string() +
                                            ": " + e.what());
        }
      }
    }
  }
  // A result for a quarantined shard wins — e.g. a resume with a raised
  // retry budget that finally landed the data.
  for (const auto& entry : collected.by_shard) {
    collected.quarantined.erase(entry.first);
  }
  return collected;
}

CampaignAggregates aggregate(const LoadedCampaign& campaign,
                             const CollectedResults& results) {
  CampaignAggregates aggregates;
  aggregates.spec = campaign.spec;
  const std::vector<VariantSpec> variant_list = variants(campaign.spec);
  const std::vector<ShardSpec> shards = plan_shards(campaign.spec);
  aggregates.shards_total = shards.size();
  for (const auto& entry : results.quarantined) {
    if (entry.first < aggregates.shards_total) {
      aggregates.quarantined_shards.push_back(entry.first);
    }
  }
  aggregates.variants.resize(variant_list.size());
  for (std::size_t v = 0; v < variant_list.size(); ++v) {
    aggregates.variants[v].variant = variant_list[v];
    aggregates.variants[v].columns.reserve(campaign.spec.patients);
  }

  // Pass 1, shard-index order: rows into their variant's columns (shards
  // of one variant are contiguous and ascending, so columns end up in
  // patient order), plus the global lifetime range for the CDF edges.
  double life_lo = std::numeric_limits<double>::infinity();
  double life_hi = -std::numeric_limits<double>::infinity();
  for (const ShardSpec& shard : shards) {
    const auto it = results.by_shard.find(shard.index);
    if (it == results.by_shard.end()) continue;
    ++aggregates.shards_present;
    VariantAggregate& va = aggregates.variants[shard.variant];
    for (const energy::CampaignRunRow& row : it->second.rows) {
      va.columns.append_run(row);
      if (!row.joined) ++va.failed_joins;
      if (std::isfinite(row.lifetime_hours)) {
        life_lo = std::min(life_lo, row.lifetime_hours);
        life_hi = std::max(life_hi, row.lifetime_hours);
      }
    }
  }
  if (life_lo > life_hi) life_lo = life_hi = 0.0;  // no finite lifetimes

  // Pass 2, shard-index order again: per-shard CDFs over the global edges,
  // merged as they come — the exact-merge path the store exists to enable.
  for (const ShardSpec& shard : shards) {
    const auto it = results.by_shard.find(shard.index);
    if (it == results.by_shard.end()) continue;
    std::vector<double> lifetimes;
    lifetimes.reserve(it->second.rows.size());
    for (const energy::CampaignRunRow& row : it->second.rows) {
      lifetimes.push_back(row.lifetime_hours);
    }
    aggregates.lifetime_cdf.merge(energy::MetricCdf::build_with_range(
        lifetimes, life_lo, life_hi, campaign.spec.cdf_bins));
  }
  return aggregates;
}

std::string render_report(const CampaignAggregates& aggregates) {
  std::ostringstream out;
  out << "campaign: " << aggregates.spec.patients << " patients x "
      << aggregates.variants.size() << " variants, "
      << aggregates.shards_present << "/" << aggregates.shards_total
      << " shards"
      << (aggregates.complete()
              ? ""
              : (aggregates.complete_except_quarantined()
                     ? " [COMPLETE EXCEPT QUARANTINED]"
                     : " [INCOMPLETE]"))
      << "\n";
  std::vector<double> scratch;
  for (const VariantAggregate& va : aggregates.variants) {
    const energy::CampaignColumns& c = va.columns;
    out << "  " << va.variant.label() << ": runs=" << c.runs();
    if (c.runs() == 0) {
      out << " (no data)\n";
      continue;
    }
    const std::vector<double> pdr = c.pdr_column();
    out << " total_mj[mean=" << fixed3(energy::column_mean(c.total_mj))
        << " p95=" << fixed3(energy::column_percentile(c.total_mj, 0.95,
                                                       scratch))
        << "]";
    out << " join_ms[p50=" << fixed3(energy::column_percentile(c.join_ms, 0.50,
                                                               scratch))
        << " p95=" << fixed3(energy::column_percentile(c.join_ms, 0.95,
                                                       scratch))
        << "]";
    out << " pdr[p5=" << fixed3(energy::column_percentile(pdr, 0.05, scratch))
        << " p50=" << fixed3(energy::column_percentile(pdr, 0.50, scratch))
        << "]";
    out << " failed_joins=" << va.failed_joins << "\n";
  }
  const energy::MetricCdf& cdf = aggregates.lifetime_cdf;
  out << "  lifetime_hours: n=" << cdf.count << "+" << cdf.unbounded
      << "inf p5=" << fixed3(cdf.percentile(0.05))
      << " p50=" << fixed3(cdf.percentile(0.50))
      << " p95=" << fixed3(cdf.percentile(0.95)) << "\n";
  if (!aggregates.quarantined_shards.empty()) {
    // Explicit gap accounting: what the aggregate is missing, named by
    // manifest geometry only (never attempts/reason), so the report for
    // "quarantined organically after N failures" and "quarantined
    // manually before the run" is byte-identical.
    const std::vector<ShardSpec> shards = plan_shards(aggregates.spec);
    for (const std::size_t index : aggregates.quarantined_shards) {
      const ShardSpec& shard = shards[index];
      out << "  quarantined: shard " << index << " = "
          << aggregates.variants[shard.variant].variant.label() << " patients "
          << shard.first << ".." << shard.first + shard.count - 1 << "\n";
    }
  }
  return out.str();
}

std::string render_csv(const CampaignAggregates& aggregates) {
  std::ostringstream out;
  out << "variant,patient,seed,total_mj,radio_mj,mcu_mj,asic_mj,"
         "lifetime_hours,join_ms,data_packets,delivered_packets,pdr,joined\n";
  for (const VariantAggregate& va : aggregates.variants) {
    for (std::size_t i = 0; i < va.columns.runs(); ++i) {
      const energy::CampaignRunRow row = va.columns.row(i);
      out << va.variant.label() << "," << i << "," << row.seed << ","
          << exact(row.total_mj) << "," << exact(row.radio_mj) << ","
          << exact(row.mcu_mj) << "," << exact(row.asic_mj) << ","
          << exact(row.lifetime_hours) << "," << exact(row.join_ms) << ","
          << row.data_packets << "," << row.delivered_packets << ","
          << exact(row.pdr()) << "," << (row.joined ? 1 : 0) << "\n";
    }
  }
  return out.str();
}

VerifyReport verify_store(const std::filesystem::path& dir) {
  VerifyReport report;
  LoadedCampaign campaign;
  try {
    campaign = load_campaign(dir);
  } catch (const StoreError& e) {
    report.errors.push_back(std::string("manifest: ") + e.what());
    return report;
  }
  report.shards_total = plan_shards(campaign.spec).size();

  const StoreScan scan = scan_store(dir);
  report.segments = scan.segments.size();
  std::map<std::size_t, std::size_t> seen;  // shard -> record count
  std::map<std::size_t, QuarantineRecord> qseen;
  for (const SegmentScan& segment : scan.segments) {
    report.records += segment.records.size();
    std::size_t shard_records_here = 0;
    for (const Record& record : segment.records) {
      if (record.type == RecordType::kShardResult) {
        ++report.shard_records;
        ++shard_records_here;
        try {
          const ShardResult result = decode_shard_result(record.payload);
          ++seen[static_cast<std::size_t>(result.shard)];
        } catch (const StoreError& e) {
          report.errors.push_back(segment.path.filename().string() + ": " +
                                  e.what());
        }
      } else if (record.type == RecordType::kCheckpoint) {
        ++report.checkpoints;
        try {
          const Checkpoint checkpoint = decode_checkpoint(record.payload);
          if (checkpoint.shards_completed != shard_records_here) {
            std::ostringstream msg;
            msg << segment.path.filename().string() << ": checkpoint claims "
                << checkpoint.shards_completed << " shards, segment holds "
                << shard_records_here << " at that point";
            report.errors.push_back(msg.str());
          }
        } catch (const StoreError& e) {
          report.errors.push_back(segment.path.filename().string() + ": " +
                                  e.what());
        }
      } else if (record.type == RecordType::kQuarantine) {
        ++report.quarantine_records;
        try {
          const QuarantineRecord q = decode_quarantine(record.payload);
          qseen[static_cast<std::size_t>(q.shard)] = q;
        } catch (const StoreError& e) {
          report.errors.push_back(segment.path.filename().string() + ": " +
                                  e.what());
        }
      } else {
        report.errors.push_back(
            segment.path.filename().string() + ": unknown record type " +
            std::to_string(static_cast<unsigned>(record.type)));
      }
    }
    if (!segment.tail_error.empty()) {
      report.warnings.push_back(segment.path.filename().string() + ": " +
                                segment.tail_error);
    }
  }
  for (const auto& [shard, count] : seen) {
    if (shard >= report.shards_total) {
      report.errors.push_back("shard " + std::to_string(shard) +
                              " out of range for the manifest's plan");
      continue;
    }
    ++report.shards_present;
    if (count > 1) report.duplicates += count - 1;
  }
  for (const auto& [shard, record] : qseen) {
    if (shard >= report.shards_total) {
      report.errors.push_back("quarantined shard " + std::to_string(shard) +
                              " out of range for the manifest's plan");
      continue;
    }
    // A later result for the shard supersedes the marker — only
    // result-less quarantines count as accounted-for gaps.
    if (seen.count(shard) != 0) continue;
    ++report.shards_quarantined;
    std::ostringstream line;
    line << "shard " << shard << " quarantined after " << record.attempts
         << " attempt(s) (" << to_string(record.reason) << ")";
    report.quarantined.push_back(line.str());
  }
  const std::size_t accounted =
      report.shards_present + report.shards_quarantined;
  if (accounted < report.shards_total) {
    report.warnings.push_back(std::to_string(report.shards_total - accounted) +
                              " shard(s) incomplete (resume will re-run them)");
  }
  report.ok = report.errors.empty() && accounted == report.shards_total;
  return report;
}

std::string VerifyReport::render() const {
  std::ostringstream out;
  out << "store: " << segments << " segment(s), " << records << " record(s) ("
      << shard_records << " shard, " << checkpoints << " checkpoint, "
      << quarantine_records << " quarantine), " << shards_present << "/"
      << shards_total << " shards present, " << shards_quarantined
      << " quarantined, " << duplicates << " duplicate(s)\n";
  for (const std::string& q : quarantined) out << "quarantined: " << q << "\n";
  for (const std::string& w : warnings) out << "warning: " << w << "\n";
  for (const std::string& e : errors) out << "error: " << e << "\n";
  out << (ok ? "OK" : "NOT OK") << "\n";
  return out.str();
}

}  // namespace bansim::campaign
