// Campaign store readers: aggregation, reporting, and verification.
//
// Everything here is a pure function of the store's bytes, and the
// aggregate is deliberately independent of *how* those bytes got there:
// shard results are keyed by global shard index, duplicates resolve
// last-writer-wins by (generation, worker, record order), and merging
// happens in shard-index order.  A campaign run uninterrupted by one
// worker, run by eight, or SIGKILLed and resumed three times therefore
// aggregates to bit-identical columns and CDFs — the invariant the
// crash-recovery battery pins exact-double.
//
// render_report() emits no wall-clock, path, or segment-count data, so
// two stores with equal aggregates render byte-identical reports (the CI
// kill-and-resume smoke literally diffs them).  Provenance detail lives
// in verify_store()'s output instead.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/shard_runner.hpp"
#include "campaign/store.hpp"
#include "energy/campaign_columns.hpp"

namespace bansim::campaign {

/// Decoded shard results, deduplicated last-writer-wins.
struct CollectedResults {
  /// Global shard index -> newest decodable result for it.
  std::map<std::size_t, ShardResult> by_shard;
  /// Global shard index -> newest quarantine record, for shards with NO
  /// result — a result for the same shard always wins (data beats a
  /// historical failure marker, e.g. a raised retry budget on resume).
  std::map<std::size_t, QuarantineRecord> quarantined;
  /// Records whose payload failed to decode despite a valid CRC (writer
  /// bugs; empty in healthy stores).
  std::vector<std::string> decode_errors;
  /// kShardResult records beyond the first per shard (resume overlap).
  std::size_t duplicates{0};
};

/// Scans segments/ and decodes every shard record.  Segments are visited
/// in (generation, worker) order, so a later write for the same shard
/// replaces an earlier one.
[[nodiscard]] CollectedResults collect_results(const std::filesystem::path& dir);

/// One variant's population aggregate, rows in patient-index order.
struct VariantAggregate {
  VariantSpec variant;
  energy::CampaignColumns columns;
  std::size_t failed_joins{0};
};

struct CampaignAggregates {
  CampaignSpec spec;
  std::vector<VariantAggregate> variants;
  /// Population lifetime CDF across every variant, assembled the
  /// shard-mergeable way: one global range pass, one build_with_range per
  /// shard, merged in shard-index order.
  energy::MetricCdf lifetime_cdf;
  std::size_t shards_present{0};
  std::size_t shards_total{0};
  /// Planned shards accounted for only by a quarantine record, ascending.
  /// The report renders these as explicit gaps — index, variant label,
  /// patient range — but never attempts/reason, so the rendered report
  /// stays a pure function of WHICH shards are missing, not of the
  /// failure history that made them missing.
  std::vector<std::size_t> quarantined_shards;
  [[nodiscard]] bool complete() const {
    return shards_present == shards_total;
  }
  /// Every gap is a quarantined shard — the terminal "ran out of retry
  /// budget" state, as opposed to an interrupted run a resume can finish.
  [[nodiscard]] bool complete_except_quarantined() const {
    return !quarantined_shards.empty() &&
           shards_present + quarantined_shards.size() == shards_total;
  }
};

/// Merges collected shard results into per-variant columns + the global
/// lifetime CDF, in shard-index order regardless of store layout.
[[nodiscard]] CampaignAggregates aggregate(const LoadedCampaign& campaign,
                                           const CollectedResults& results);

/// Human-readable summary: per-variant energy means, join-latency and PDR
/// percentiles, global lifetime CDF percentiles.  Deterministic: depends
/// only on the aggregates.
[[nodiscard]] std::string render_report(const CampaignAggregates& aggregates);

/// Per-patient CSV (header + one row per variant x patient), doubles at
/// full round-trip precision.
[[nodiscard]] std::string render_csv(const CampaignAggregates& aggregates);

/// Store health check: segment CRC walk, manifest consistency, checkpoint
/// cross-check.
struct VerifyReport {
  /// True when the manifest loads, every planned shard has a decodable
  /// result or a quarantine record, and checkpoints agree with their
  /// segments.  Torn tails in old generations are expected crash debris
  /// and stay warnings.  Note `ok` with shards_quarantined > 0 is the
  /// "complete except quarantined" state (CLI exit 5, not 0).
  bool ok{false};
  std::size_t segments{0};
  std::size_t records{0};
  std::size_t shard_records{0};
  std::size_t checkpoints{0};
  std::size_t quarantine_records{0};
  std::size_t duplicates{0};
  std::size_t shards_present{0};
  /// Planned shards accounted for only by a quarantine record.
  std::size_t shards_quarantined{0};
  std::size_t shards_total{0};
  std::vector<std::string> errors;    ///< clear `ok`
  std::vector<std::string> warnings;  ///< informational (torn tails)
  /// One line per quarantined shard with the failure history (attempts,
  /// reason) — provenance lives here, not in the report, so reports stay
  /// byte-comparable across different failure histories.
  std::vector<std::string> quarantined;

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] VerifyReport verify_store(const std::filesystem::path& dir);

}  // namespace bansim::campaign
