// Campaign orchestrator: shard dispatch, worker processes, crash recovery,
// and the worker-health layer (watchdog, retry budgets, quarantine).
//
// `run_campaign` loads the manifest, diffs the planned shard list against
// the store's completed records, and executes only what is missing — which
// makes a first run and a resume the same operation ("resume" is just a
// run over a non-empty store).  Every invocation claims a fresh
// generation; its writers never touch older segments, so nothing a crashed
// run left behind can be damaged by recovering from it.
//
// Two execution modes:
//  * workers == 0 — in-process: one ShardRunner executes remaining shards
//    in index order in this process (used by tests and the fuzzer's
//    shard-resume oracle, where fork() is off the table);
//  * workers >= 1 — multi-process: the orchestrator re-execs its own
//    binary (/proc/self/exe) `workers` times in worker mode and feeds
//    shard indices over a pipe work-queue, one in flight per worker.
//    Workers append results to their own segment and speak a heartbeat
//    protocol on the reply pipe — "start <k>" when a shard begins,
//    "hb <k>" after every patient, "done <k>" when the record is durable.
//
// Worker health (DESIGN.md §5i).  The poll loop ticks on a bounded
// timeout; a worker whose heartbeat gap exceeds its shard deadline
// (clamp(deadline_factor x trailing per-variant runtime estimate,
// deadline_floor_ms, deadline_ceiling_ms) — all manifest knobs) is
// declared hung, SIGKILLed, and reaped, and its in-flight shard is
// requeued.  Every failed attempt (hang, worker death by signal, nonzero
// worker exit) charges the shard's retry budget; a requeued shard waits
// out an exponential backoff before redispatch, and a shard that exhausts
// `retry_budget` attempts is written to the store as a kQuarantine record:
// skipped by every later resume, surfaced by report/verify as an explicit
// gap.  A campaign whose only missing shards are quarantined is "complete
// except quarantined", not incomplete.  Workers optionally run under
// setrlimit CPU/address-space caps so a runaway shard dies (and charges
// its budget) instead of taking the host down; SIGTERM to the
// orchestrator or a worker triggers a clean shutdown that finishes
// in-flight shards and flushes a final checkpoint.
//
// Worker mode is entered through maybe_worker_main(), which every binary
// that calls run_campaign with workers >= 1 must invoke at the top of
// main() — the child finds its way back into worker code through the
// sentinel argv, not through a separate executable, so CMake needs no
// binary-path plumbing and the test binary's workers run the test build.
//
// Chaos hooks (tests and CI only).  worker_chaos is a comma-separated
// list of specs:
//  * "<ordinal>:<mid|torn|post|hang>" — armed only in the FIRST worker of
//    the run, fires at its <ordinal>-th executed shard: SIGKILL before
//    the record ("mid"), halfway through the record write ("torn"), after
//    the record but before the "done" reply ("post"), or wedge forever
//    ("hang", the watchdog's prey);
//  * "shard=<k>:<hang|crash>" — a poison shard: EVERY worker that
//    executes global shard k wedges forever or SIGKILLs itself, which is
//    what drives a shard into quarantine.
// die_after_shards SIGKILLs the whole process group mid-campaign, the
// outside-in version the CI kill-and-resume smoke drives.
// stop_after_shards is the polite variant: stop dispatching after N
// completions and return, leaving a valid partial store (the fuzzer's
// split-point lever).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "campaign/manifest.hpp"

namespace bansim::campaign {

struct RunCampaignOptions {
  /// 0 = in-process execution; N >= 1 forks N worker processes.
  unsigned workers{0};
  /// Append a checkpoint record every N completed shards per worker.
  std::size_t checkpoint_every{4};
  /// Replace a dead worker with a fresh one (new worker id, same
  /// generation) as long as work remains.
  bool respawn_dead_workers{true};

  /// Exponential-backoff base for redispatching a failed shard: attempt
  /// n waits base * 2^(n-1) ms, capped at backoff_cap_ms.  Execution
  /// policy, not campaign definition — hence here and not the manifest.
  std::uint32_t backoff_base_ms{50};
  std::uint32_t backoff_cap_ms{2000};
  /// setrlimit caps applied inside each worker (0 = unlimited): CPU
  /// seconds (RLIMIT_CPU; overrun delivers SIGXCPU) and address-space MiB
  /// (RLIMIT_AS; overrun fails allocations).  Either death charges the
  /// in-flight shard's retry budget like any other crash.
  std::uint32_t worker_cpu_limit_s{0};
  std::uint32_t worker_mem_limit_mb{0};

  /// Chaos: stop dispatching after this many newly completed shards and
  /// return normally (0 = run to completion).  The store is left valid
  /// but incomplete — a later run resumes it.
  std::size_t stop_after_shards{0};
  /// Chaos: after this many newly completed shards, SIGKILL every worker
  /// and then this process itself (0 = never).  Nothing after the kill
  /// runs; the caller observes it as a fork()ed child that died.
  std::size_t die_after_shards{0};
  /// Chaos spec list (see the header comment).  Empty = no chaos.
  /// Multi-process mode only.
  std::string worker_chaos{};
};

struct RunCampaignResult {
  std::uint32_t generation{0};
  std::size_t shards_total{0};
  /// Already durable before this run started (the resume diff).
  std::size_t shards_already_complete{0};
  /// Newly completed (and durable) by this run.
  std::size_t shards_run{0};
  /// Quarantined by an earlier run (durable kQuarantine records) and
  /// therefore skipped by this one.
  std::size_t shards_already_quarantined{0};
  /// Newly quarantined by this run (retry budget exhausted).
  std::size_t shards_quarantined{0};
  unsigned workers_spawned{0};
  unsigned workers_died{0};
  /// Workers SIGKILLed by the watchdog for missing a shard deadline
  /// (also counted in workers_died).
  unsigned workers_hung{0};
  /// True when the run returned with shards that are neither durable nor
  /// quarantined — a chaos/SIGTERM stop, or worker exhaustion.
  bool incomplete{false};

  /// Every planned shard is accounted for, but some only by quarantine —
  /// the "complete except quarantined" terminal state (CLI exit 5).
  [[nodiscard]] bool complete_except_quarantined() const {
    return !incomplete &&
           shards_quarantined + shards_already_quarantined > 0;
  }
};

/// Creates the campaign directory: manifest.ini + base_config.ini.
/// Throws StoreError if `dir` already holds a manifest.
void create_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                     const core::BanConfig& base);

/// Runs (or resumes — same thing) the campaign at `dir`.  Returns once
/// every planned shard is durable or quarantined, or earlier under chaos
/// options / SIGTERM.
[[nodiscard]] RunCampaignResult run_campaign(const std::filesystem::path& dir,
                                             const RunCampaignOptions& options);

/// Worker-mode entry hook.  Call first in main(); returns -1 when argv is
/// not a worker invocation (normal startup continues), else runs the
/// worker loop to completion and returns its exit code (return it from
/// main immediately).
[[nodiscard]] int maybe_worker_main(int argc, char** argv);

}  // namespace bansim::campaign
