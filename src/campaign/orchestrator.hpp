// Campaign orchestrator: shard dispatch, worker processes, crash recovery.
//
// `run_campaign` loads the manifest, diffs the planned shard list against
// the store's completed records, and executes only what is missing — which
// makes a first run and a resume the same operation ("resume" is just a
// run over a non-empty store).  Every invocation claims a fresh
// generation; its writers never touch older segments, so nothing a crashed
// run left behind can be damaged by recovering from it.
//
// Two execution modes:
//  * workers == 0 — in-process: one ShardRunner executes remaining shards
//    in index order in this process (used by tests and the fuzzer's
//    shard-resume oracle, where fork() is off the table);
//  * workers >= 1 — multi-process: the orchestrator re-execs its own
//    binary (/proc/self/exe) `workers` times in worker mode and feeds
//    shard indices over a pipe work-queue, one in flight per worker.
//    Workers append results to their own segment and reply "done <k>"; a
//    worker that dies (crash, SIGKILL, chaos) just stops replying — the
//    orchestrator reaps it, puts its in-flight shard back on the queue,
//    and optionally respawns a replacement under a fresh worker id.
//
// Worker mode is entered through maybe_worker_main(), which every binary
// that calls run_campaign with workers >= 1 must invoke at the top of
// main() — the child finds its way back into worker code through the
// sentinel argv, not through a separate executable, so CMake needs no
// binary-path plumbing and the test binary's workers run the test build.
//
// Chaos hooks (tests and CI only): worker_chaos injects a SIGKILL into
// the first worker at a chosen shard ordinal — before the record lands
// ("mid"), halfway through the record write ("torn"), or after the record
// but before the "done" reply ("post").  die_after_shards SIGKILLs the
// whole process group mid-campaign, the outside-in version the CI
// kill-and-resume smoke drives.  stop_after_shards is the polite variant:
// stop dispatching after N completions and return, leaving a valid
// partial store (the fuzzer's split-point lever).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "campaign/manifest.hpp"

namespace bansim::campaign {

struct RunCampaignOptions {
  /// 0 = in-process execution; N >= 1 forks N worker processes.
  unsigned workers{0};
  /// Append a checkpoint record every N completed shards per worker.
  std::size_t checkpoint_every{4};
  /// Replace a dead worker with a fresh one (new worker id, same
  /// generation) as long as work remains.
  bool respawn_dead_workers{true};

  /// Chaos: stop dispatching after this many newly completed shards and
  /// return normally (0 = run to completion).  The store is left valid
  /// but incomplete — a later run resumes it.
  std::size_t stop_after_shards{0};
  /// Chaos: after this many newly completed shards, SIGKILL every worker
  /// and then this process itself (0 = never).  Nothing after the kill
  /// runs; the caller observes it as a fork()ed child that died.
  std::size_t die_after_shards{0};
  /// Chaos spec for the FIRST worker spawned this run: "<ordinal>:<mode>"
  /// where ordinal is the 1-based count of shards that worker executes
  /// and mode is mid|torn|post.  Empty = no chaos.  Multi-process mode
  /// only.
  std::string worker_chaos{};
};

struct RunCampaignResult {
  std::uint32_t generation{0};
  std::size_t shards_total{0};
  /// Already durable before this run started (the resume diff).
  std::size_t shards_already_complete{0};
  /// Newly completed (and durable) by this run.
  std::size_t shards_run{0};
  unsigned workers_spawned{0};
  unsigned workers_died{0};
  /// True when the run returned with shards still missing — either a
  /// stop_after_shards chaos stop, or every worker died with respawn off.
  bool incomplete{false};
};

/// Creates the campaign directory: manifest.ini + base_config.ini.
/// Throws StoreError if `dir` already holds a manifest.
void create_campaign(const std::filesystem::path& dir, const CampaignSpec& spec,
                     const core::BanConfig& base);

/// Runs (or resumes — same thing) the campaign at `dir`.  Returns once
/// every planned shard is durable, or earlier under chaos options.
[[nodiscard]] RunCampaignResult run_campaign(const std::filesystem::path& dir,
                                             const RunCampaignOptions& options);

/// Worker-mode entry hook.  Call first in main(); returns -1 when argv is
/// not a worker invocation (normal startup continues), else runs the
/// worker loop to completion and returns its exit code (return it from
/// main immediately).
[[nodiscard]] int maybe_worker_main(int argc, char** argv);

}  // namespace bansim::campaign
