#include "baseline/powertossim_estimator.hpp"

namespace bansim::baseline {

namespace {
/// Fallback nominal cost for tasks missing from the calibration table.
constexpr std::uint64_t kDefaultTaskCycles = 300;
}  // namespace

PowerTossimEstimator::PowerTossimEstimator(const hw::McuParams& mcu,
                                           const hw::RadioParams& radio,
                                           const phy::PhyConfig& phy,
                                           os::CycleCostModel cost_model,
                                           const EstimatorOptions& options)
    : mcu_{mcu}, radio_{radio}, phy_{phy}, costs_{std::move(cost_model)},
      options_{options} {}

void PowerTossimEstimator::begin_measurement(sim::TimePoint t0) {
  t0_ = t0;
  for (auto& [node, acc] : accounts_) {
    const bool was_listening = acc.listening;
    acc = NodeAccount{};
    acc.listening = was_listening;
    acc.listen_since = t0;
  }
}

PowerTossimEstimator::NodeAccount& PowerTossimEstimator::account(
    std::string_view node) {
  auto it = accounts_.find(node);
  if (it == accounts_.end()) {
    it = accounts_.emplace(std::string{node}, NodeAccount{}).first;
  }
  return it->second;
}

void PowerTossimEstimator::on_task(std::string_view node, std::string_view task,
                                   sim::TimePoint when) {
  if (when < t0_) return;
  NodeAccount& acc = account(node);
  acc.task_cycles += costs_.lookup(task, kDefaultTaskCycles);
  ++acc.tasks;
}

void PowerTossimEstimator::on_radio_rx_on(std::string_view node,
                                          sim::TimePoint when) {
  NodeAccount& acc = account(node);
  acc.listening = true;
  acc.listen_since = when < t0_ ? t0_ : when;
}

void PowerTossimEstimator::on_radio_rx_off(std::string_view node,
                                           sim::TimePoint when) {
  NodeAccount& acc = account(node);
  if (acc.listening && when >= t0_) {
    const sim::TimePoint from = acc.listen_since < t0_ ? t0_ : acc.listen_since;
    acc.rx_seconds += (when - from).to_seconds();
  }
  acc.listening = false;
}

void PowerTossimEstimator::on_radio_tx(std::string_view node,
                                       std::size_t frame_bytes,
                                       sim::TimePoint when) {
  if (when < t0_) return;
  NodeAccount& acc = account(node);
  acc.pending_tx_bytes = frame_bytes;
}

void PowerTossimEstimator::on_packet(std::string_view node,
                                     net::PacketType type, bool transmit,
                                     sim::TimePoint when) {
  NodeAccount& acc = account(node);
  const bool is_control = type != net::PacketType::kData;
  if (!transmit) {
    if (when >= t0_ && is_control) ++acc.control_frames;
    return;
  }
  if (when < t0_) {
    acc.pending_tx_bytes = 0;
    return;
  }
  if (is_control) ++acc.control_frames;
  if (is_control && !options_.include_control_packets) {
    acc.pending_tx_bytes = 0;
    return;
  }
  acc.tx_air_seconds +=
      phy::air_time(phy_, acc.pending_tx_bytes).to_seconds();
  ++acc.tx_frames;
  acc.pending_tx_bytes = 0;
}

std::map<std::string, NodeEstimate> PowerTossimEstimator::finalize(
    sim::TimePoint t1) const {
  std::map<std::string, NodeEstimate> out;
  const double window_s = (t1 - t0_).to_seconds();
  for (const auto& [node, acc] : accounts_) {
    NodeEstimate est;
    est.tasks = acc.tasks;
    est.tx_frames = acc.tx_frames;
    est.control_frames = acc.control_frames;

    double rx_s = acc.rx_seconds;
    if (acc.listening) {
      const sim::TimePoint from = acc.listen_since < t0_ ? t0_ : acc.listen_since;
      rx_s += (t1 - from).to_seconds();
    }
    if (!options_.include_listen_windows) rx_s = 0.0;

    est.radio_joules = radio_.supply_volts *
                       (rx_s * radio_.rx_current_amps +
                        acc.tx_air_seconds * radio_.tx_current_amps);

    double active_s = 0.0;
    if (options_.include_mcu_tasks) {
      active_s = static_cast<double>(acc.task_cycles) / mcu_.cpu_hz;
    }
    if (active_s > window_s) active_s = window_s;
    est.mcu_joules = mcu_.supply_volts *
                     (active_s * mcu_.active_current_amps +
                      (window_s - active_s) * mcu_.lpm_current_amps);
    out.emplace(node, est);
  }
  return out;
}

}  // namespace bansim::baseline
