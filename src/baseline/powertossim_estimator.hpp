// PowerTOSSIM-style analytical energy estimator.
//
// The related-work baseline (Section 2): reconstructs node energy purely
// from the OS-level event stream — task executions mapped through a
// calibrated cycle table, radio listen windows, and frame transmissions at
// the nominal air rate.  It never sees settling phases, FIFO clock-in, ISR
// overhead, wake-up stalls or clock skew.  The ablation bench switches its
// feature toggles off one by one to show which modelling ingredients the
// paper's model needs in order to stay accurate (CRC'd collisions, control
// packets, idle listening).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/params.hpp"
#include "os/cycle_cost_model.hpp"
#include "os/probe.hpp"
#include "phy/air_frame.hpp"

namespace bansim::baseline {

struct EstimatorOptions {
  /// Account energy for control frames (beacons, SSR); the paper argues
  /// their cost is non-negligible (Section 4.2, "Control packet overhead").
  bool include_control_packets{true};
  /// Account receiver listen windows (idle listening + beacon reception).
  bool include_listen_windows{true};
  /// Account MCU task execution (otherwise the MCU is assumed asleep).
  bool include_mcu_tasks{true};
};

/// Per-node analytical estimate.
struct NodeEstimate {
  double radio_joules{0};
  double mcu_joules{0};
  std::uint64_t tasks{0};
  std::uint64_t tx_frames{0};
  std::uint64_t control_frames{0};
};

class PowerTossimEstimator final : public os::ModelProbe {
 public:
  PowerTossimEstimator(const hw::McuParams& mcu, const hw::RadioParams& radio,
                       const phy::PhyConfig& phy,
                       os::CycleCostModel cost_model,
                       const EstimatorOptions& options = {});

  /// Starts (or restarts) the measurement window; earlier events are
  /// discarded.  Listen windows already open are clipped to `t0`.
  void begin_measurement(sim::TimePoint t0);

  /// Produces per-node estimates for the window [t0, t1].
  [[nodiscard]] std::map<std::string, NodeEstimate> finalize(
      sim::TimePoint t1) const;

  // os::ModelProbe
  void on_task(std::string_view node, std::string_view task,
               sim::TimePoint when) override;
  void on_radio_rx_on(std::string_view node, sim::TimePoint when) override;
  void on_radio_rx_off(std::string_view node, sim::TimePoint when) override;
  void on_radio_tx(std::string_view node, std::size_t frame_bytes,
                   sim::TimePoint when) override;
  void on_packet(std::string_view node, net::PacketType type, bool transmit,
                 sim::TimePoint when) override;

 private:
  struct NodeAccount {
    std::uint64_t task_cycles{0};
    std::uint64_t tasks{0};
    double rx_seconds{0};
    double tx_air_seconds{0};
    std::uint64_t tx_frames{0};
    std::uint64_t control_frames{0};
    bool listening{false};
    sim::TimePoint listen_since;
    std::size_t pending_tx_bytes{0};  ///< bytes of the in-flight frame
    bool pending_tx_is_control{false};
  };

  NodeAccount& account(std::string_view node);

  hw::McuParams mcu_;
  hw::RadioParams radio_;
  phy::PhyConfig phy_;
  os::CycleCostModel costs_;
  EstimatorOptions options_;
  sim::TimePoint t0_;
  std::map<std::string, NodeAccount, std::less<>> accounts_;
};

}  // namespace bansim::baseline
