// Synthetic ECG waveform generator.
//
// Substitutes the live electrodes of the physical platform (see DESIGN.md):
// a sum-of-Gaussians PQRST morphology repeated at a configurable heart rate
// with beat-to-beat RR variability, plus small deterministic noise.  The
// paper's validation drives the Rpeak application with a 75 beats/min ECG;
// this generator reproduces that stimulus and, because it is seeded, both
// fidelity runs of an experiment see bit-identical signals.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bansim::apps {

struct EcgConfig {
  double heart_rate_bpm{75.0};
  double rr_variability{0.03};   ///< stddev of RR as a fraction of the mean
  double baseline_volts{1.25};   ///< mid-scale of the front-end output
  double r_amplitude_volts{0.6}; ///< R-peak height above baseline
  double noise_volts{0.005};     ///< broadband noise amplitude
};

class EcgSynthesizer {
 public:
  EcgSynthesizer(const EcgConfig& config, sim::Rng rng);

  /// Front-end output voltage at simulated time `t`.
  [[nodiscard]] double sample(sim::TimePoint t);

  /// True R-peak instants generated so far up to `until` (ground truth for
  /// detector accuracy tests).  Extends the beat train as needed.
  [[nodiscard]] std::vector<sim::TimePoint> beats_until(sim::TimePoint until);

  [[nodiscard]] const EcgConfig& config() const { return config_; }

  /// Restores freshly-constructed state in place, keeping the beat train's
  /// capacity.  Config and RNG may differ from construction: population
  /// sweeps re-seed and re-parameterise the physiology per run.
  void reset(const EcgConfig& config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
    beats_.clear();
    horizon_ = sim::TimePoint::zero();
  }

 private:
  /// Ensures the beat train covers `t` plus one beat of lookahead.
  void extend(sim::TimePoint t);

  /// Morphology around one R peak; `dt` in seconds relative to the peak.
  [[nodiscard]] double pqrst(double dt) const;

  EcgConfig config_;
  sim::Rng rng_;
  std::vector<sim::TimePoint> beats_;  ///< R-peak times, ascending
  sim::TimePoint horizon_{sim::TimePoint::zero()};
};

}  // namespace bansim::apps
