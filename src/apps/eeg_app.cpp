#include "apps/eeg_app.hpp"

#include <cassert>
#include <cmath>

#include "apps/ecg_streaming_app.hpp"  // frame-read cycle constants

namespace bansim::apps {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

}  // namespace

EegApp::EegApp(sim::Simulator& simulator, os::NodeOs& node_os,
               mac::NodeMacBase& mac, const EegAppConfig& config,
               const EegSynthesizer& source)
    : simulator_{simulator}, os_{node_os}, mac_{mac}, config_{config},
      source_{source}, buffers_(config.channels) {}

void EegApp::start() {
  const auto period =
      sim::Duration::from_seconds(1.0 / config_.sample_rate_hz);
  timer_ = os_.timers().start_periodic("app.sample", period,
                                       [this] { on_sample_tick(); });
}

void EegApp::stop() {
  if (timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(timer_);
    timer_ = os::TimerService::kInvalidTimer;
  }
}

double EegApp::required_bandwidth_bps() const {
  const double blocks_per_s =
      config_.sample_rate_hz / static_cast<double>(config_.block_samples);
  // ~1.15 bytes per delta-coded sample plus the 2-byte length per channel.
  const double block_bytes =
      config_.channels *
      (2.0 + 2.0 + 1.15 * static_cast<double>(config_.block_samples - 1));
  const double chunk =
      static_cast<double>(config_.max_payload - net::kFragmentHeaderBytes);
  const double frags = std::ceil(block_bytes / chunk);
  return (block_bytes + frags * net::kFragmentHeaderBytes) * blocks_per_s;
}

double EegApp::slot_bandwidth_bps(sim::Duration cycle) const {
  return static_cast<double>(config_.max_payload) / cycle.to_seconds();
}

void EegApp::on_sample_tick() {
  auto& board = os_.board();
  std::uint64_t cycles = EcgStreamingApp::kFrameReadCycles;
  std::vector<std::uint16_t> codes(config_.channels);
  for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
    codes[ch] = board.adc().quantize(source_.sample(ch, simulator_.now()));
    cycles += EcgStreamingApp::kKeepChannelCycles + (codes[ch] & 0x1F);
  }
  ++samples_;

  os_.scheduler().post("app.acq_frame", cycles,
                       [this, codes = std::move(codes)] {
    for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
      buffers_[ch].push_back(codes[ch]);
    }
    if (buffers_[0].size() >= config_.block_samples) emit_block();
  });
}

void EegApp::emit_block() {
  // The delta encode of a full block is a real computation on the node;
  // charge ~14 cycles per sample plus fixed overhead.
  const std::uint64_t cycles =
      600 + 14ull * config_.channels * config_.block_samples;
  os_.scheduler().post("app.encode_block", cycles, [this] {
    std::vector<std::uint8_t> block;
    for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
      const auto stream = delta_encode(
          std::span<const std::uint16_t>(buffers_[ch].data(),
                                         config_.block_samples));
      put_u16(block, static_cast<std::uint16_t>(stream.size()));
      block.insert(block.end(), stream.begin(), stream.end());
      buffers_[ch].erase(buffers_[ch].begin(),
                         buffers_[ch].begin() +
                             static_cast<std::ptrdiff_t>(config_.block_samples));
    }

    net::FragmentError frag_error{};
    const auto fragments = net::fragment_block(next_block_id_, block,
                                               config_.max_payload, &frag_error);
    // A payload with no room after the fragment header is a configuration
    // bug (every block would be shed forever), not a workload condition.
    assert(fragments || frag_error == net::FragmentError::kTooManyFragments);
    (void)frag_error;
    if (!fragments ||
        mac_.queue_depth() + fragments->size() > mac_.queue_capacity()) {
      // Radio budget overcommitted: shed the whole block rather than ship
      // a torso the collector cannot reassemble.
      ++blocks_dropped_;
      ++next_block_id_;
      return;
    }
    for (const auto& fragment : *fragments) {
      mac_.queue_payload(fragment);
    }
    ++next_block_id_;
    ++blocks_sent_;
  });
}

void EegCollector::on_payload(std::span<const std::uint8_t> payload) {
  auto block = reassembler_.feed(payload);
  if (!block) return;

  if (recovered_.empty()) recovered_.resize(channels_);
  std::size_t at = 0;
  std::vector<std::vector<std::uint16_t>> decoded(channels_);
  for (std::uint32_t ch = 0; ch < channels_; ++ch) {
    if (at + 2 > block->data.size()) {
      ++decode_failures_;
      return;
    }
    const std::size_t len =
        static_cast<std::size_t>(block->data[at] << 8) | block->data[at + 1];
    at += 2;
    if (at + len > block->data.size()) {
      ++decode_failures_;
      return;
    }
    auto samples = delta_decode(
        std::span<const std::uint8_t>(block->data.data() + at, len));
    if (!samples) {
      ++decode_failures_;
      return;
    }
    decoded[ch] = std::move(*samples);
    at += len;
  }
  for (std::uint32_t ch = 0; ch < channels_; ++ch) {
    recovered_[ch].insert(recovered_[ch].end(), decoded[ch].begin(),
                          decoded[ch].end());
  }
  ++blocks_decoded_;
}

}  // namespace bansim::apps
