#include "apps/eeg_synthesizer.hpp"

#include <cmath>
#include <numbers>

namespace bansim::apps {

namespace {
double hash_noise(std::int64_t ticks, std::uint32_t channel) {
  auto x = static_cast<std::uint64_t>(ticks) * 0x9E3779B97F4A7C15ull +
           channel * 0xD1B54A32D192ED03ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return (static_cast<double>(x >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}
}  // namespace

EegSynthesizer::EegSynthesizer(const EegConfig& config, std::uint64_t seed) {
  reset(config, seed);
}

void EegSynthesizer::reset(const EegConfig& config, std::uint64_t seed) {
  config_ = config;
  per_channel_.resize(config.channels);
  // Band centres and relative weights for a resting-state montage.
  struct Band {
    double lo, hi, weight;
  };
  constexpr Band kBands[] = {
      {8.0, 13.0, 1.0},   // alpha dominates at rest
      {13.0, 30.0, 0.4},  // beta
      {4.0, 8.0, 0.5},    // theta
      {0.5, 4.0, 0.6},    // delta / slow drift
  };
  for (std::uint32_t ch = 0; ch < config.channels; ++ch) {
    per_channel_[ch].clear();
    sim::Rng rng = sim::Rng::stream(seed, "eeg/ch" + std::to_string(ch));
    for (const Band& band : kBands) {
      // Two components per band for a fuller spectrum.
      for (int k = 0; k < 2; ++k) {
        Component c;
        c.hz = rng.uniform(band.lo, band.hi);
        c.amplitude = band.weight * rng.uniform(0.3, 1.0) / 4.0;
        c.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        per_channel_[ch].push_back(c);
      }
    }
  }
}

double EegSynthesizer::sample(std::uint32_t channel, sim::TimePoint t) const {
  if (channel >= per_channel_.size()) return config_.baseline_volts;
  const double seconds = t.to_seconds();
  double v = 0.0;
  for (const Component& c : per_channel_[channel]) {
    v += c.amplitude *
         std::sin(2.0 * std::numbers::pi * c.hz * seconds + c.phase);
  }
  return config_.baseline_volts + config_.amplitude_volts * v +
         config_.noise_volts * hash_noise(t.ticks(), channel);
}

}  // namespace bansim::apps
