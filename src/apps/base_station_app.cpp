#include "apps/base_station_app.hpp"

#include <cstdio>

namespace bansim::apps {

void BaseStationApp::on_data(net::NodeId source,
                             std::span<const std::uint8_t> payload,
                             sim::TimePoint when) {
  NodeTraffic& t = traffic_[source];
  if (t.packets == 0) t.first_arrival = when;
  if (t.packets > 0) {
    t.inter_arrival_ms.add((when - t.last_arrival).to_seconds() * 1e3);
  }
  ++t.packets;
  t.bytes += payload.size();
  t.last_arrival = when;
  ++total_packets_;
  total_bytes_ += payload.size();

  if (decode_beats_ && payload.size() == 5) {
    const BeatEvent event = BeatEvent::deserialize(
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
    // 200 Hz sampling: each "sample ago" is 5 ms (paper's example: 74
    // samples ago -> 370 ms ago).
    const sim::TimePoint beat_at =
        when - sim::Duration::from_milliseconds(5.0 * event.samples_ago);
    beats_.emplace_back(source, beat_at);
  }
}

std::string BaseStationApp::render_summary() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-8s %10s %10s %14s %14s\n", "node",
                "packets", "bytes", "mean gap(ms)", "max gap(ms)");
  out += line;
  for (const auto& [node, t] : traffic_) {
    std::snprintf(line, sizeof line, "%-8u %10llu %10llu %14.2f %14.2f\n",
                  node, static_cast<unsigned long long>(t.packets),
                  static_cast<unsigned long long>(t.bytes),
                  t.inter_arrival_ms.mean(), t.inter_arrival_ms.max());
    out += line;
  }
  std::snprintf(line, sizeof line, "total: %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(total_packets_),
                static_cast<unsigned long long>(total_bytes_));
  out += line;
  return out;
}

}  // namespace bansim::apps
