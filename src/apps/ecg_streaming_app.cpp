#include "apps/ecg_streaming_app.hpp"

namespace bansim::apps {

std::vector<std::uint8_t> pack12(const std::vector<std::uint16_t>& codes) {
  std::vector<std::uint8_t> out;
  out.reserve(codes.size() * 3 / 2 + 2);
  for (std::size_t i = 0; i + 1 < codes.size(); i += 2) {
    const std::uint16_t a = codes[i] & 0x0FFF;
    const std::uint16_t b = codes[i + 1] & 0x0FFF;
    out.push_back(static_cast<std::uint8_t>(a >> 4));
    out.push_back(static_cast<std::uint8_t>(((a & 0x0F) << 4) | (b >> 8)));
    out.push_back(static_cast<std::uint8_t>(b & 0xFF));
  }
  if (codes.size() % 2 != 0) {
    const std::uint16_t a = codes.back() & 0x0FFF;
    out.push_back(static_cast<std::uint8_t>(a >> 4));
    out.push_back(static_cast<std::uint8_t>((a & 0x0F) << 4));
  }
  return out;
}

std::vector<std::uint16_t> unpack12(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint16_t> out;
  out.reserve(bytes.size() * 2 / 3 + 1);
  std::size_t i = 0;
  while (i + 2 < bytes.size() + 1) {
    if (i + 1 >= bytes.size()) break;
    const std::uint16_t a = static_cast<std::uint16_t>(
        (bytes[i] << 4) | (bytes[i + 1] >> 4));
    out.push_back(a);
    if (i + 2 < bytes.size()) {
      const std::uint16_t b = static_cast<std::uint16_t>(
          ((bytes[i + 1] & 0x0F) << 8) | bytes[i + 2]);
      out.push_back(b);
    }
    i += 3;
  }
  return out;
}

EcgStreamingApp::EcgStreamingApp(sim::Simulator& simulator, os::NodeOs& node_os,
                                 mac::NodeMacBase& mac,
                                 const StreamingConfig& config)
    : simulator_{simulator}, os_{node_os}, mac_{mac}, config_{config} {}

void EcgStreamingApp::start() {
  const auto period =
      sim::Duration::from_seconds(1.0 / config_.sample_rate_hz);
  timer_ = os_.timers().start_periodic("app.sample", period,
                                       [this] { on_sample_tick(); });
}

void EcgStreamingApp::stop() {
  if (timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(timer_);
    timer_ = os::TimerService::kInvalidTimer;
  }
}

void EcgStreamingApp::on_sample_tick() {
  // Read the ASIC frame now (interrupt context defines the sampling
  // instant), then charge the acquisition cost as a posted task whose
  // cycle count depends on the data, as the real readout loop does.
  auto& board = os_.board();
  std::uint64_t cycles = kFrameReadCycles;
  std::vector<std::uint16_t> codes(config_.channels);
  for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
    codes[ch] = board.adc().quantize(board.asic().read_channel(ch));
    cycles += kKeepChannelCycles + (codes[ch] & 0x3F);
  }
  ++samples_;

  os_.scheduler().post("app.acq_frame", cycles,
                       [this, codes = std::move(codes)] {
    pending_codes_.insert(pending_codes_.end(), codes.begin(), codes.end());
    if (pending_codes_.size() >= 2) {
      // Pack in pairs as they become available.
      std::vector<std::uint16_t> pair(pending_codes_.begin(),
                                      pending_codes_.begin() + 2);
      pending_codes_.erase(pending_codes_.begin(), pending_codes_.begin() + 2);
      auto packed = pack12(pair);
      buffer_.insert(buffer_.end(), packed.begin(), packed.end());
    }
    if (buffer_.size() >= config_.payload_bytes) {
      std::vector<std::uint8_t> payload(
          buffer_.begin(),
          buffer_.begin() + static_cast<std::ptrdiff_t>(config_.payload_bytes));
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() +
                        static_cast<std::ptrdiff_t>(config_.payload_bytes));
      const std::uint64_t pack_cycles = 200 + 4 * payload.size();
      os_.scheduler().post("app.pack_payload", pack_cycles,
                           [this, payload = std::move(payload)] {
                             mac_.queue_payload(payload);
                             ++payloads_;
                           });
    }
  });
}

}  // namespace bansim::apps
