#include "apps/rpeak_detector.hpp"

#include <cmath>

namespace bansim::apps {

RpeakDetector::RpeakDetector(double sample_rate_hz)
    : fs_{sample_rate_hz},
      integration_window_{static_cast<std::size_t>(0.15 * sample_rate_hz)},
      refractory_samples_{static_cast<std::size_t>(0.25 * sample_rate_hz)},
      confirm_lag_{static_cast<std::size_t>(0.08 * sample_rate_hz)} {}

RpeakResult RpeakDetector::step(std::uint16_t adc_code) {
  RpeakResult result;
  // Baseline bookkeeping every sample: scaling, derivative, squaring, MWI
  // update.  These correspond to the always-executed basic blocks.
  std::uint32_t cycles = 380;
  ++index_;

  const double x = static_cast<double>(adc_code);
  if (!have_prev_) {
    prev_sample_ = x;
    have_prev_ = true;
    result.work_cycles = cycles;
    return result;
  }

  const double derivative = x - prev_sample_;
  prev_sample_ = x;
  const double squared = derivative * derivative;

  window_.push_back(squared);
  integral_ += squared;
  if (window_.size() > integration_window_) {
    integral_ -= window_.front();
    window_.pop_front();
  }
  const double mwi = integral_ / static_cast<double>(integration_window_);

  // Adaptive threshold tracking (Pan-Tompkins style running estimates).
  threshold_ = noise_level_ + 0.35 * (signal_level_ - noise_level_);

  const bool beyond_refractory =
      index_ - last_beat_index_ > refractory_samples_ || last_beat_index_ == 0;

  if (mwi > threshold_ && threshold_ > 0.0 && beyond_refractory) {
    cycles += 220;  // candidate path: compare, track maximum
    if (!in_peak_) {
      in_peak_ = true;
      peak_value_ = mwi;
      peak_index_ = index_;
    } else if (mwi > peak_value_) {
      peak_value_ = mwi;
      peak_index_ = index_;
    } else if (index_ - peak_index_ >= confirm_lag_) {
      // The integrated energy has fallen for confirm_lag_ samples: the
      // tracked maximum was the R peak.
      cycles += 450;  // confirmation path: update levels, emit event
      in_peak_ = false;
      last_beat_index_ = peak_index_;
      signal_level_ = 0.125 * peak_value_ + 0.875 * signal_level_;
      ++beats_;
      // The MWI peak lags the R wave by about half the integration window.
      const auto lag = static_cast<std::uint64_t>(integration_window_ / 2);
      const std::uint64_t r_index = peak_index_ > lag ? peak_index_ - lag : 0;
      result.beat_samples_ago = static_cast<std::uint32_t>(index_ - r_index);
    }
  } else {
    if (in_peak_ && beyond_refractory &&
        index_ - peak_index_ >= confirm_lag_) {
      // Fell below threshold before confirmation: same confirmation logic.
      cycles += 450;
      in_peak_ = false;
      last_beat_index_ = peak_index_;
      signal_level_ = 0.125 * peak_value_ + 0.875 * signal_level_;
      ++beats_;
      const auto lag = static_cast<std::uint64_t>(integration_window_ / 2);
      const std::uint64_t r_index = peak_index_ > lag ? peak_index_ - lag : 0;
      result.beat_samples_ago = static_cast<std::uint32_t>(index_ - r_index);
    }
    noise_level_ = 0.125 * mwi + 0.875 * noise_level_;
    // Warm-up: grow the signal estimate so the threshold can rise above
    // the noise floor once real QRS energy appears.
    if (mwi > signal_level_) signal_level_ = 0.5 * mwi + 0.5 * signal_level_;
  }

  result.work_cycles = cycles;
  return result;
}

}  // namespace bansim::apps
