// Base-station collector application.
//
// The paper's collecting device (PC/PDA) is mains powered; it is not part
// of the energy validation, but the experiments need its functional half:
// receive every data frame, keep per-node accounting (packets, bytes,
// sequence gaps, inter-arrival statistics) and decode beat events so tests
// can check end-to-end correctness of the whole stack.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "apps/rpeak_app.hpp"
#include "net/packet.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace bansim::apps {

struct NodeTraffic {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  sim::TimePoint first_arrival;
  sim::TimePoint last_arrival;
  sim::Summary inter_arrival_ms;
};

class BaseStationApp {
 public:
  /// Feed one received payload (wired to BaseStationMac's data handler).
  void on_data(net::NodeId source, std::span<const std::uint8_t> payload,
               sim::TimePoint when);

  /// Interprets every 5-byte payload as a BeatEvent (Rpeak experiments).
  void set_decode_beats(bool enabled) { decode_beats_ = enabled; }

  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] const std::map<net::NodeId, NodeTraffic>& per_node() const {
    return traffic_;
  }

  /// Reconstructed beat instants per node (arrival - samples_ago / fs).
  [[nodiscard]] const std::vector<std::pair<net::NodeId, sim::TimePoint>>&
  beats() const {
    return beats_;
  }

  [[nodiscard]] std::string render_summary() const;

  /// Restores freshly-constructed accounting (decode flag survives; the
  /// network reset re-applies it from the new config anyway).
  void reset() {
    traffic_.clear();
    beats_.clear();
    total_packets_ = 0;
    total_bytes_ = 0;
  }

 private:
  std::map<net::NodeId, NodeTraffic> traffic_;
  std::vector<std::pair<net::NodeId, sim::TimePoint>> beats_;
  std::uint64_t total_packets_{0};
  std::uint64_t total_bytes_{0};
  bool decode_beats_{false};
};

}  // namespace bansim::apps
