#include "apps/rpeak_app.hpp"

#include "apps/ecg_streaming_app.hpp"  // kFrameReadCycles / kKeepChannelCycles

namespace bansim::apps {

std::vector<std::uint8_t> BeatEvent::serialize() const {
  return {channel,
          static_cast<std::uint8_t>(samples_ago >> 8),
          static_cast<std::uint8_t>(samples_ago & 0xFF),
          static_cast<std::uint8_t>(beat_number >> 8),
          static_cast<std::uint8_t>(beat_number & 0xFF)};
}

BeatEvent BeatEvent::deserialize(const std::vector<std::uint8_t>& bytes) {
  BeatEvent e;
  if (bytes.size() < 5) return e;
  e.channel = bytes[0];
  e.samples_ago = static_cast<std::uint16_t>((bytes[1] << 8) | bytes[2]);
  e.beat_number = static_cast<std::uint16_t>((bytes[3] << 8) | bytes[4]);
  return e;
}

RpeakApp::RpeakApp(sim::Simulator& simulator, os::NodeOs& node_os,
                   mac::NodeMacBase& mac, const RpeakConfig& config)
    : simulator_{simulator}, os_{node_os}, mac_{mac}, config_{config},
      detectors_(config.channels, RpeakDetector{config.sample_rate_hz}) {}

void RpeakApp::start() {
  const auto period =
      sim::Duration::from_seconds(1.0 / config_.sample_rate_hz);
  timer_ = os_.timers().start_periodic("app.sample", period,
                                       [this] { on_sample_tick(); });
}

void RpeakApp::stop() {
  if (timer_ != os::TimerService::kInvalidTimer) {
    os_.timers().stop(timer_);
    timer_ = os::TimerService::kInvalidTimer;
  }
}

void RpeakApp::on_sample_tick() {
  auto& board = os_.board();
  std::uint64_t acq_cycles = EcgStreamingApp::kFrameReadCycles;
  std::vector<std::uint16_t> codes(config_.channels);
  for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
    codes[ch] = board.adc().quantize(board.asic().read_channel(ch));
    acq_cycles += EcgStreamingApp::kKeepChannelCycles + (codes[ch] & 0x3F);
  }
  ++samples_;

  os_.scheduler().post("app.acq_frame", acq_cycles,
                       [this, codes = std::move(codes)] {
    for (std::uint32_t ch = 0; ch < config_.channels; ++ch) {
      const RpeakResult r = detectors_[ch].step(codes[ch]);
      os_.scheduler().post(
          "app.rpeak_step", r.work_cycles,
          r.beat_samples_ago == 0
              ? std::function<void()>{}
              : std::function<void()>{[this, ch, ago = r.beat_samples_ago] {
                  BeatEvent event;
                  event.channel = static_cast<std::uint8_t>(ch);
                  event.samples_ago = static_cast<std::uint16_t>(ago);
                  event.beat_number = static_cast<std::uint16_t>(++beats_);
                  mac_.queue_payload(event.serialize());
                }});
    }
  });
}

}  // namespace bansim::apps
