// ECG streaming application (Section 5.1).
//
// Samples `channels` ECG channels at a configurable rate, packs the 12-bit
// ADC codes into fixed-size payloads (18 bytes in the paper) and hands each
// full payload to the MAC for transmission in the node's next TDMA slot.
// Every sample tick the driver reads the complete 25-channel ASIC frame —
// the platform constraint that forces the MCU to run at full speed and
// makes its energy non-negligible (the paper's Section 5.1 observation).
#pragma once

#include <cstdint>
#include <vector>

#include "mac/mac_base.hpp"
#include "os/node_os.hpp"
#include "sim/simulator.hpp"

namespace bansim::apps {

struct StreamingConfig {
  double sample_rate_hz{205.0};    ///< per channel
  std::uint32_t channels{2};
  std::size_t payload_bytes{18};   ///< fixed MAC payload per TDMA cycle
};

class EcgStreamingApp {
 public:
  EcgStreamingApp(sim::Simulator& simulator, os::NodeOs& node_os,
                  mac::NodeMacBase& mac, const StreamingConfig& config);

  void start();
  void stop();

  /// Restores freshly-constructed state in place (buffers keep capacity).
  /// Caller must have torn down the timer service first; the armed timer
  /// id is simply forgotten here.
  void reset(const StreamingConfig& config) {
    config_ = config;
    pending_codes_.clear();
    buffer_.clear();
    timer_ = os::TimerService::kInvalidTimer;
    samples_ = 0;
    payloads_ = 0;
  }

  [[nodiscard]] std::uint64_t samples_acquired() const { return samples_; }
  [[nodiscard]] std::uint64_t payloads_queued() const { return payloads_; }
  [[nodiscard]] const StreamingConfig& config() const { return config_; }

  /// Cycle cost of reading the full 25-channel ASIC frame once (~45 us per
  /// channel at 8 MHz: ADC12 sample-and-hold, conversion, store).  The ASIC
  /// requires full-frame readout even when only 2 channels are kept — the
  /// reason the paper runs the MCU at maximum speed (Section 5.1).
  static constexpr std::uint64_t kFrameReadCycles = 25 * 360;
  /// Extra per-channel handling (store, scale) for the channels kept.
  static constexpr std::uint64_t kKeepChannelCycles = 40;

 private:
  void on_sample_tick();

  sim::Simulator& simulator_;
  os::NodeOs& os_;
  mac::NodeMacBase& mac_;
  StreamingConfig config_;
  std::vector<std::uint16_t> pending_codes_;
  std::vector<std::uint8_t> buffer_;
  os::TimerService::TimerId timer_{os::TimerService::kInvalidTimer};
  std::uint64_t samples_{0};
  std::uint64_t payloads_{0};
};

/// Packs 12-bit codes two-per-three-bytes (used by the app and its tests).
[[nodiscard]] std::vector<std::uint8_t> pack12(
    const std::vector<std::uint16_t>& codes);

/// Inverse of pack12 (base-station side / tests).
[[nodiscard]] std::vector<std::uint16_t> unpack12(
    const std::vector<std::uint8_t>& bytes);

}  // namespace bansim::apps
