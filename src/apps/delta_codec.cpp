#include "apps/delta_codec.hpp"

namespace bansim::apps {

namespace {
constexpr std::uint8_t kEscape = 0x80;  // -128 is unused as a delta

void put_code(std::vector<std::uint8_t>& out, std::uint16_t code) {
  out.push_back(static_cast<std::uint8_t>(code >> 8));
  out.push_back(static_cast<std::uint8_t>(code & 0xFF));
}
}  // namespace

std::vector<std::uint8_t> delta_encode(std::span<const std::uint16_t> codes) {
  std::vector<std::uint8_t> out;
  if (codes.empty()) return out;
  out.reserve(codes.size() + 2);
  std::uint16_t prev = codes.front() & 0x0FFF;
  put_code(out, prev);
  for (std::size_t i = 1; i < codes.size(); ++i) {
    const std::uint16_t code = codes[i] & 0x0FFF;
    const int delta = static_cast<int>(code) - static_cast<int>(prev);
    if (delta >= -127 && delta <= 127) {
      out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(delta)));
    } else {
      out.push_back(kEscape);
      put_code(out, code);
    }
    prev = code;
  }
  return out;
}

std::optional<std::vector<std::uint16_t>> delta_decode(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::uint16_t> out;
  if (bytes.empty()) return out;
  if (bytes.size() < 2) return std::nullopt;
  std::uint16_t prev = static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
  if (prev > 0x0FFF) return std::nullopt;
  out.push_back(prev);
  std::size_t i = 2;
  while (i < bytes.size()) {
    if (bytes[i] == kEscape) {
      if (i + 2 >= bytes.size()) return std::nullopt;
      prev = static_cast<std::uint16_t>((bytes[i + 1] << 8) | bytes[i + 2]);
      if (prev > 0x0FFF) return std::nullopt;
      i += 3;
    } else {
      const auto delta = static_cast<std::int8_t>(bytes[i]);
      const int code = static_cast<int>(prev) + delta;
      if (code < 0 || code > 0x0FFF) return std::nullopt;
      prev = static_cast<std::uint16_t>(code);
      ++i;
    }
    out.push_back(prev);
  }
  return out;
}

std::size_t delta_encoded_size(std::span<const std::uint16_t> codes) {
  if (codes.empty()) return 0;
  std::size_t size = 2;
  std::uint16_t prev = codes.front() & 0x0FFF;
  for (std::size_t i = 1; i < codes.size(); ++i) {
    const std::uint16_t code = codes[i] & 0x0FFF;
    const int delta = static_cast<int>(code) - static_cast<int>(prev);
    size += (delta >= -127 && delta <= 127) ? 1 : 3;
    prev = code;
  }
  return size;
}

}  // namespace bansim::apps
