#include "apps/ecg_synthesizer.hpp"

#include <cmath>

namespace bansim::apps {

namespace {

/// One Gaussian wave of the PQRST complex: relative amplitude, center
/// offset from the R peak (s), width (s).
struct Wave {
  double amplitude;
  double mu;
  double sigma;
};

constexpr Wave kWaves[] = {
    {+0.12, -0.170, 0.022},  // P
    {-0.10, -0.025, 0.010},  // Q
    {+1.00, +0.000, 0.011},  // R
    {-0.18, +0.026, 0.011},  // S
    {+0.25, +0.200, 0.045},  // T
};

/// Deterministic per-instant noise: a hash of the tick count mapped to
/// [-1, 1], so sample(t) is a pure function of t.
double hash_noise(std::int64_t ticks) {
  auto x = static_cast<std::uint64_t>(ticks) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return (static_cast<double>(x >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

}  // namespace

EcgSynthesizer::EcgSynthesizer(const EcgConfig& config, sim::Rng rng)
    : config_{config}, rng_{rng} {}

void EcgSynthesizer::extend(sim::TimePoint t) {
  const double mean_rr = 60.0 / config_.heart_rate_bpm;
  const sim::TimePoint needed = t + sim::Duration::from_seconds(2.0 * mean_rr);
  while (horizon_ < needed) {
    double rr = rng_.normal(mean_rr, mean_rr * config_.rr_variability);
    rr = std::max(0.3 * mean_rr, rr);  // physiological floor
    const sim::TimePoint beat =
        (beats_.empty() ? sim::TimePoint::zero() +
                              sim::Duration::from_seconds(0.35 * mean_rr)
                        : beats_.back() + sim::Duration::from_seconds(rr));
    beats_.push_back(beat);
    horizon_ = beat;
  }
}

double EcgSynthesizer::pqrst(double dt) const {
  double v = 0.0;
  for (const Wave& w : kWaves) {
    const double z = (dt - w.mu) / w.sigma;
    v += w.amplitude * std::exp(-0.5 * z * z);
  }
  return v;
}

double EcgSynthesizer::sample(sim::TimePoint t) {
  extend(t);
  // Only the two beats bracketing t contribute measurably.
  double v = 0.0;
  for (auto it = beats_.rbegin(); it != beats_.rend(); ++it) {
    const double dt = (t - *it).to_seconds();
    if (dt > 1.2) break;       // too long past this beat (and all earlier)
    if (dt < -1.2) continue;   // beat far in the future
    v += pqrst(dt);
  }
  return config_.baseline_volts + config_.r_amplitude_volts * v +
         config_.noise_volts * hash_noise(t.ticks());
}

std::vector<sim::TimePoint> EcgSynthesizer::beats_until(sim::TimePoint until) {
  extend(until);
  std::vector<sim::TimePoint> out;
  for (sim::TimePoint b : beats_) {
    if (b <= until) out.push_back(b);
  }
  return out;
}

}  // namespace bansim::apps
