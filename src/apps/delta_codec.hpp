// Delta compression for biopotential sample blocks.
//
// EEG/ECG waveforms move slowly relative to the 12-bit ADC range, so
// consecutive codes differ by a few counts.  The encoder stores the first
// sample verbatim (2 bytes) and each later sample as a signed 8-bit delta;
// a delta outside [-127, 127] emits the 0x80 escape followed by the full
// 2-byte code.  Lossless, byte-oriented, and cheap enough for the MSP430 —
// the kind of on-node preprocessing the paper advocates to unload the
// radio.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace bansim::apps {

/// Encodes 12-bit codes (upper bits ignored) into the delta stream.
[[nodiscard]] std::vector<std::uint8_t> delta_encode(
    std::span<const std::uint16_t> codes);

/// Decodes a delta stream; nullopt on malformed input (truncated escape,
/// empty-but-nonzero stream).
[[nodiscard]] std::optional<std::vector<std::uint16_t>> delta_decode(
    std::span<const std::uint8_t> bytes);

/// Encoded size the stream would need, without materializing it.
[[nodiscard]] std::size_t delta_encoded_size(
    std::span<const std::uint16_t> codes);

}  // namespace bansim::apps
