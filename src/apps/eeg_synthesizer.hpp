// Synthetic multi-channel EEG generator.
//
// The platform monitors up to 24 EEG channels (Section 3); this source
// provides per-channel waveforms built from the classic EEG rhythm bands —
// alpha (8-13 Hz), beta (13-30 Hz), theta (4-8 Hz) — with per-channel
// random phases/weights plus 1/f-ish background activity.  Deterministic
// per (seed, channel), so both fidelity runs and the base-station checks
// see identical signals.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bansim::apps {

struct EegConfig {
  std::uint32_t channels{8};
  double baseline_volts{1.25};
  double amplitude_volts{0.20};  ///< peak rhythm amplitude after front-end gain
  double noise_volts{0.01};
};

class EegSynthesizer {
 public:
  EegSynthesizer(const EegConfig& config, std::uint64_t seed);

  /// Channel voltage at simulated time `t`.
  [[nodiscard]] double sample(std::uint32_t channel, sim::TimePoint t) const;

  [[nodiscard]] const EegConfig& config() const { return config_; }

  /// Re-draws every channel's components for a new (config, seed), reusing
  /// the per-channel vectors' capacity.  Equivalent to reconstruction.
  void reset(const EegConfig& config, std::uint64_t seed);

 private:
  struct Component {
    double amplitude;  ///< fraction of amplitude_volts
    double hz;
    double phase;
  };

  EegConfig config_;
  std::vector<std::vector<Component>> per_channel_;
};

}  // namespace bansim::apps
