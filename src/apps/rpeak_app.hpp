// R-peak detection application (Section 5.2).
//
// Samples every channel at 200 Hz, runs the streaming R-peak detector per
// sample, and transmits a small event packet only when a beat is found —
// trading a little extra MCU work for a large reduction in radio load.
// The event payload carries the paper's "N samples ago" value so the base
// station can reconstruct the beat instant (N * 5 ms before arrival).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/rpeak_detector.hpp"
#include "mac/mac_base.hpp"
#include "os/node_os.hpp"
#include "sim/simulator.hpp"

namespace bansim::apps {

struct RpeakConfig {
  double sample_rate_hz{200.0};  ///< fixed by the algorithm (paper: 200 Hz)
  std::uint32_t channels{2};
};

/// Event payload layout of a beat packet.
struct BeatEvent {
  std::uint8_t channel{0};
  std::uint16_t samples_ago{0};
  std::uint16_t beat_number{0};

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static BeatEvent deserialize(
      const std::vector<std::uint8_t>& bytes);
};

class RpeakApp {
 public:
  RpeakApp(sim::Simulator& simulator, os::NodeOs& node_os,
           mac::NodeMacBase& mac, const RpeakConfig& config);

  void start();
  void stop();

  /// Restores freshly-constructed state in place.  Detectors are reset one
  /// by one when the channel count is unchanged (no allocation); a channel
  /// count change rebuilds the vector.
  void reset(const RpeakConfig& config) {
    config_ = config;
    if (detectors_.size() == config.channels) {
      for (RpeakDetector& d : detectors_) d.reset(config.sample_rate_hz);
    } else {
      detectors_.assign(config.channels,
                        RpeakDetector{config.sample_rate_hz});
    }
    timer_ = os::TimerService::kInvalidTimer;
    samples_ = 0;
    beats_ = 0;
  }

  [[nodiscard]] std::uint64_t samples_acquired() const { return samples_; }
  [[nodiscard]] std::uint64_t beats_reported() const { return beats_; }
  [[nodiscard]] const RpeakConfig& config() const { return config_; }
  [[nodiscard]] const RpeakDetector& detector(std::uint32_t ch) const {
    return detectors_[ch];
  }

 private:
  void on_sample_tick();

  sim::Simulator& simulator_;
  os::NodeOs& os_;
  mac::NodeMacBase& mac_;
  RpeakConfig config_;
  std::vector<RpeakDetector> detectors_;
  os::TimerService::TimerId timer_{os::TimerService::kInvalidTimer};
  std::uint64_t samples_{0};
  std::uint64_t beats_{0};
};

}  // namespace bansim::apps
