// Streaming R-peak detection algorithm.
//
// Reproduces the paper's application contract (Section 5.2): the main loop
// feeds one sample per call; the algorithm returns 0 when the sample train
// contains no new beat, or a positive value N meaning "the sample submitted
// N calls ago was an R peak".  Internally this is a compact Pan-Tompkins
// pipeline — derivative, squaring, moving-window integration, adaptive
// threshold with a refractory period — sized for a 200 Hz input.
//
// step() also reports the *cycle cost* of this invocation, because the real
// code path is data dependent: quiet samples exit early, threshold
// crossings run the peak-confirmation logic.  The reference scheduler
// charges these actual cycles; the estimation model charges the calibrated
// average — the paper's µC estimation-error mechanism.
#pragma once

#include <cstdint>
#include <deque>

namespace bansim::apps {

struct RpeakResult {
  /// 0: no beat; N>0: the sample N calls ago was an R peak.
  std::uint32_t beat_samples_ago{0};
  /// Actual MCU cycles this invocation would cost on the platform.
  std::uint32_t work_cycles{0};
};

class RpeakDetector {
 public:
  explicit RpeakDetector(double sample_rate_hz = 200.0);

  /// Feeds one ADC code (12-bit, baseline-centered input expected).
  RpeakResult step(std::uint16_t adc_code);

  [[nodiscard]] std::uint64_t beats_detected() const { return beats_; }
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Restores freshly-constructed state in place for a (possibly new)
  /// sample rate; the integration window keeps its allocated blocks.
  void reset(double sample_rate_hz) {
    fs_ = sample_rate_hz;
    integration_window_ = static_cast<std::size_t>(0.15 * sample_rate_hz);
    refractory_samples_ = static_cast<std::size_t>(0.25 * sample_rate_hz);
    confirm_lag_ = static_cast<std::size_t>(0.08 * sample_rate_hz);
    window_.clear();
    integral_ = 0.0;
    prev_sample_ = 0.0;
    have_prev_ = false;
    signal_level_ = 0.0;
    noise_level_ = 0.0;
    threshold_ = 0.0;
    index_ = 0;
    last_beat_index_ = 0;
    in_peak_ = false;
    peak_value_ = 0.0;
    peak_index_ = 0;
    beats_ = 0;
  }

 private:
  double fs_;
  std::size_t integration_window_;  ///< ~150 ms of samples
  std::size_t refractory_samples_;  ///< ~250 ms lockout
  std::size_t confirm_lag_;         ///< samples to wait before confirming

  std::deque<double> window_;       ///< squared-derivative history
  double integral_{0.0};
  double prev_sample_{0.0};
  bool have_prev_{false};

  double signal_level_{0.0};
  double noise_level_{0.0};
  double threshold_{0.0};

  std::uint64_t index_{0};          ///< samples consumed
  std::uint64_t last_beat_index_{0};
  bool in_peak_{false};
  double peak_value_{0.0};
  std::uint64_t peak_index_{0};
  std::uint64_t beats_{0};
};

}  // namespace bansim::apps
