// Multi-channel EEG monitoring application.
//
// The third application domain of the platform (Section 3: "monitoring up
// to 24 channels EEG"): samples N EEG channels, delta-compresses fixed
// blocks of samples per channel, fragments the compressed block over the
// small ShockBurst payload, and queues the fragments for the node's TDMA
// slot.  The base-station side (EegCollector) reassembles and decodes,
// recovering the exact sample stream when no fragment was lost.
//
// Bandwidth bookkeeping is explicit: required_bandwidth() vs the MAC's one
// frame per cycle tells whether a configuration fits, and the app counts
// blocks it had to drop when the radio budget is overcommitted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/delta_codec.hpp"
#include "apps/eeg_synthesizer.hpp"
#include "mac/mac_base.hpp"
#include "net/fragment.hpp"
#include "os/node_os.hpp"
#include "sim/simulator.hpp"

namespace bansim::apps {

struct EegAppConfig {
  std::uint32_t channels{8};
  double sample_rate_hz{64.0};
  std::uint32_t block_samples{16};  ///< samples per channel per block
  std::size_t max_payload{net::kMaxPayloadBytes};
};

class EegApp {
 public:
  EegApp(sim::Simulator& simulator, os::NodeOs& node_os,
         mac::NodeMacBase& mac, const EegAppConfig& config,
         const EegSynthesizer& source);

  void start();
  void stop();

  /// Mean application bytes/second the radio must carry (compressed blocks
  /// + fragment headers), assuming ~1.15 B per delta-coded sample.
  [[nodiscard]] double required_bandwidth_bps() const;

  /// Bytes/second one frame per TDMA `cycle` can carry.
  [[nodiscard]] double slot_bandwidth_bps(sim::Duration cycle) const;

  [[nodiscard]] std::uint64_t samples_acquired() const { return samples_; }
  [[nodiscard]] std::uint64_t blocks_sent() const { return blocks_sent_; }
  [[nodiscard]] std::uint64_t blocks_dropped() const { return blocks_dropped_; }
  [[nodiscard]] const EegAppConfig& config() const { return config_; }

  /// Restores freshly-constructed state in place (buffers keep capacity).
  void reset(const EegAppConfig& config) {
    config_ = config;
    buffers_.resize(config.channels);
    for (auto& b : buffers_) b.clear();
    next_block_id_ = 0;
    timer_ = os::TimerService::kInvalidTimer;
    samples_ = 0;
    blocks_sent_ = 0;
    blocks_dropped_ = 0;
  }

 private:
  void on_sample_tick();
  void emit_block();

  sim::Simulator& simulator_;
  os::NodeOs& os_;
  mac::NodeMacBase& mac_;
  EegAppConfig config_;
  const EegSynthesizer& source_;
  std::vector<std::vector<std::uint16_t>> buffers_;  ///< per channel
  std::uint8_t next_block_id_{0};
  os::TimerService::TimerId timer_{os::TimerService::kInvalidTimer};
  std::uint64_t samples_{0};
  std::uint64_t blocks_sent_{0};
  std::uint64_t blocks_dropped_{0};
};

/// Base-station-side reassembly and decode of EegApp traffic.
class EegCollector {
 public:
  explicit EegCollector(std::uint32_t channels) : channels_{channels} {}

  /// Feeds one received MAC payload (a fragment).
  void on_payload(std::span<const std::uint8_t> payload);

  /// Recovered samples per channel, in arrival order.
  [[nodiscard]] const std::vector<std::vector<std::uint16_t>>& samples() const {
    return recovered_;
  }
  [[nodiscard]] std::uint64_t blocks_decoded() const { return blocks_decoded_; }
  [[nodiscard]] std::uint64_t decode_failures() const { return decode_failures_; }
  [[nodiscard]] const net::Reassembler& reassembler() const { return reassembler_; }

  /// Restores freshly-constructed state in place.
  void reset() {
    reassembler_ = net::Reassembler{};
    recovered_.clear();
    blocks_decoded_ = 0;
    decode_failures_ = 0;
  }

 private:
  std::uint32_t channels_;
  net::Reassembler reassembler_;
  std::vector<std::vector<std::uint16_t>> recovered_;
  std::uint64_t blocks_decoded_{0};
  std::uint64_t decode_failures_{0};
};

}  // namespace bansim::apps
