#include "energy/energy_report.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace bansim::energy {

namespace {
constexpr double kJoulesToMillijoules = 1e3;

std::string formatted(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

/// Splits `text` into lines, dropping a trailing empty line.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(pos));
      return fields;
    }
    fields.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

double parse_double_field(const std::string& field, const char* what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("energy CSV: bad ") + what +
                                " value '" + field + "'");
  }
}
}  // namespace

double NodeEnergy::total_joules() const {
  double e = 0.0;
  for (const auto& c : components) e += c.joules;
  return e;
}

double NodeEnergy::component_joules(const std::string& component) const {
  for (const auto& c : components) {
    if (c.component == component) return c.joules;
  }
  return 0.0;
}

std::string render_energy_table(const std::vector<NodeEnergy>& nodes) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-12s %-10s %14s   %s\n", "node",
                "component", "energy (mJ)", "per-state (mJ)");
  out += line;
  out += std::string(72, '-') + "\n";
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      std::string states;
      for (const auto& [name, joules] : c.per_state) {
        states += name + "=" + formatted("%.3f", joules * kJoulesToMillijoules) + " ";
      }
      std::snprintf(line, sizeof line, "%-12s %-10s %14.3f   %s\n",
                    n.node.c_str(), c.component.c_str(),
                    c.joules * kJoulesToMillijoules, states.c_str());
      out += line;
    }
    std::snprintf(line, sizeof line, "%-12s %-10s %14.3f\n", n.node.c_str(),
                  "TOTAL", n.total_joules() * kJoulesToMillijoules);
    out += line;
  }
  return out;
}

std::string render_energy_csv(const std::vector<NodeEnergy>& nodes) {
  std::string out = "node,component,state,energy_mj\n";
  char line[256];
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      for (const auto& [state, joules] : c.per_state) {
        std::snprintf(line, sizeof line, "%s,%s,%s,%.6f\n", n.node.c_str(),
                      c.component.c_str(), state.c_str(),
                      joules * kJoulesToMillijoules);
        out += line;
      }
    }
  }
  return out;
}

std::vector<NodeEnergy> parse_energy_csv(const std::string& csv) {
  const auto lines = split_lines(csv);
  if (lines.empty() || lines[0] != "node,component,state,energy_mj") {
    throw std::invalid_argument("energy CSV: missing/unknown header");
  }
  std::vector<NodeEnergy> nodes;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = split_fields(lines[i]);
    if (fields.size() != 4) {
      throw std::invalid_argument("energy CSV: row " + std::to_string(i) +
                                  " has " + std::to_string(fields.size()) +
                                  " fields, expected 4");
    }
    const double joules =
        parse_double_field(fields[3], "energy_mj") / kJoulesToMillijoules;
    if (nodes.empty() || nodes.back().node != fields[0]) {
      nodes.push_back(NodeEnergy{fields[0], {}});
    }
    auto& components = nodes.back().components;
    if (components.empty() || components.back().component != fields[1]) {
      components.push_back(ComponentEnergy{fields[1], 0.0, {}});
    }
    components.back().per_state.emplace_back(fields[2], joules);
    components.back().joules += joules;
  }
  return nodes;
}

double ValidationRow::radio_error() const {
  return radio_real_mj > 0 ? std::abs(radio_sim_mj - radio_real_mj) / radio_real_mj
                           : 0.0;
}

double ValidationRow::mcu_error() const {
  return mcu_real_mj > 0 ? std::abs(mcu_sim_mj - mcu_real_mj) / mcu_real_mj : 0.0;
}

double ValidationTable::avg_radio_error() const {
  if (rows.empty()) return 0.0;
  double e = 0.0;
  for (const auto& r : rows) e += r.radio_error();
  return e / static_cast<double>(rows.size());
}

double ValidationTable::avg_mcu_error() const {
  if (rows.empty()) return 0.0;
  double e = 0.0;
  for (const auto& r : rows) e += r.mcu_error();
  return e / static_cast<double>(rows.size());
}

std::string ValidationTable::render() const {
  std::string out = title + "\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "%-10s %-10s | %12s %12s | %12s %12s\n",
                parameter_name.c_str(), "Cycle(ms)", "E Radio Real",
                "E Radio Sim", "E uC Real", "E uC Sim");
  out += line;
  out += std::string(78, '-') + "\n";
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line,
                  "%-10s %-10.0f | %12.1f %12.1f | %12.1f %12.1f\n",
                  r.parameter.c_str(), r.cycle_ms, r.radio_real_mj,
                  r.radio_sim_mj, r.mcu_real_mj, r.mcu_sim_mj);
    out += line;
  }
  out += std::string(78, '-') + "\n";
  std::snprintf(line, sizeof line, "Avg err radio: %.1f%%   Avg err uC: %.1f%%\n",
                avg_radio_error() * 100.0, avg_mcu_error() * 100.0);
  out += line;
  return out;
}

std::string ValidationTable::render_csv() const {
  std::string out =
      "parameter,cycle_ms,radio_real_mj,radio_sim_mj,mcu_real_mj,mcu_sim_mj,"
      "radio_err,mcu_err\n";
  char line[256];
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line, "%s,%.1f,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f\n",
                  r.parameter.c_str(), r.cycle_ms, r.radio_real_mj,
                  r.radio_sim_mj, r.mcu_real_mj, r.mcu_sim_mj, r.radio_error(),
                  r.mcu_error());
    out += line;
  }
  return out;
}

ValidationTable parse_validation_csv(const std::string& csv) {
  const auto lines = split_lines(csv);
  const std::string header =
      "parameter,cycle_ms,radio_real_mj,radio_sim_mj,mcu_real_mj,mcu_sim_mj,"
      "radio_err,mcu_err";
  if (lines.empty() || lines[0] != header) {
    throw std::invalid_argument("validation CSV: missing/unknown header");
  }
  ValidationTable table;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = split_fields(lines[i]);
    if (fields.size() != 8) {
      throw std::invalid_argument("validation CSV: row " + std::to_string(i) +
                                  " has " + std::to_string(fields.size()) +
                                  " fields, expected 8");
    }
    ValidationRow row;
    row.parameter = fields[0];
    row.cycle_ms = parse_double_field(fields[1], "cycle_ms");
    row.radio_real_mj = parse_double_field(fields[2], "radio_real_mj");
    row.radio_sim_mj = parse_double_field(fields[3], "radio_sim_mj");
    row.mcu_real_mj = parse_double_field(fields[4], "mcu_real_mj");
    row.mcu_sim_mj = parse_double_field(fields[5], "mcu_sim_mj");
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace bansim::energy
