#include "energy/energy_report.hpp"

#include <cmath>
#include <cstdio>

namespace bansim::energy {

namespace {
constexpr double kJoulesToMillijoules = 1e3;

std::string formatted(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}
}  // namespace

double NodeEnergy::total_joules() const {
  double e = 0.0;
  for (const auto& c : components) e += c.joules;
  return e;
}

double NodeEnergy::component_joules(const std::string& component) const {
  for (const auto& c : components) {
    if (c.component == component) return c.joules;
  }
  return 0.0;
}

std::string render_energy_table(const std::vector<NodeEnergy>& nodes) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-12s %-10s %14s   %s\n", "node",
                "component", "energy (mJ)", "per-state (mJ)");
  out += line;
  out += std::string(72, '-') + "\n";
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      std::string states;
      for (const auto& [name, joules] : c.per_state) {
        states += name + "=" + formatted("%.3f", joules * kJoulesToMillijoules) + " ";
      }
      std::snprintf(line, sizeof line, "%-12s %-10s %14.3f   %s\n",
                    n.node.c_str(), c.component.c_str(),
                    c.joules * kJoulesToMillijoules, states.c_str());
      out += line;
    }
    std::snprintf(line, sizeof line, "%-12s %-10s %14.3f\n", n.node.c_str(),
                  "TOTAL", n.total_joules() * kJoulesToMillijoules);
    out += line;
  }
  return out;
}

std::string render_energy_csv(const std::vector<NodeEnergy>& nodes) {
  std::string out = "node,component,state,energy_mj\n";
  char line[256];
  for (const auto& n : nodes) {
    for (const auto& c : n.components) {
      for (const auto& [state, joules] : c.per_state) {
        std::snprintf(line, sizeof line, "%s,%s,%s,%.6f\n", n.node.c_str(),
                      c.component.c_str(), state.c_str(),
                      joules * kJoulesToMillijoules);
        out += line;
      }
    }
  }
  return out;
}

double ValidationRow::radio_error() const {
  return radio_real_mj > 0 ? std::abs(radio_sim_mj - radio_real_mj) / radio_real_mj
                           : 0.0;
}

double ValidationRow::mcu_error() const {
  return mcu_real_mj > 0 ? std::abs(mcu_sim_mj - mcu_real_mj) / mcu_real_mj : 0.0;
}

double ValidationTable::avg_radio_error() const {
  if (rows.empty()) return 0.0;
  double e = 0.0;
  for (const auto& r : rows) e += r.radio_error();
  return e / static_cast<double>(rows.size());
}

double ValidationTable::avg_mcu_error() const {
  if (rows.empty()) return 0.0;
  double e = 0.0;
  for (const auto& r : rows) e += r.mcu_error();
  return e / static_cast<double>(rows.size());
}

std::string ValidationTable::render() const {
  std::string out = title + "\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "%-10s %-10s | %12s %12s | %12s %12s\n",
                parameter_name.c_str(), "Cycle(ms)", "E Radio Real",
                "E Radio Sim", "E uC Real", "E uC Sim");
  out += line;
  out += std::string(78, '-') + "\n";
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line,
                  "%-10s %-10.0f | %12.1f %12.1f | %12.1f %12.1f\n",
                  r.parameter.c_str(), r.cycle_ms, r.radio_real_mj,
                  r.radio_sim_mj, r.mcu_real_mj, r.mcu_sim_mj);
    out += line;
  }
  out += std::string(78, '-') + "\n";
  std::snprintf(line, sizeof line, "Avg err radio: %.1f%%   Avg err uC: %.1f%%\n",
                avg_radio_error() * 100.0, avg_mcu_error() * 100.0);
  out += line;
  return out;
}

std::string ValidationTable::render_csv() const {
  std::string out =
      "parameter,cycle_ms,radio_real_mj,radio_sim_mj,mcu_real_mj,mcu_sim_mj,"
      "radio_err,mcu_err\n";
  char line[256];
  for (const auto& r : rows) {
    std::snprintf(line, sizeof line, "%s,%.1f,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f\n",
                  r.parameter.c_str(), r.cycle_ms, r.radio_real_mj,
                  r.radio_sim_mj, r.mcu_real_mj, r.mcu_sim_mj, r.radio_error(),
                  r.mcu_error());
    out += line;
  }
  return out;
}

}  // namespace bansim::energy
