// Deployment-lifetime reporting: how long each node's energy store lasts.
//
// The rows are pure data — the storage-aware layers (hw/fault/check)
// compute the projections and observed deaths and hand finished numbers
// down, so this stays a formatting module with no hardware dependency,
// like the rest of the energy layer.  A row's lifetime is the observed
// depletion instant when the node actually died during the run, otherwise
// the projection extrapolated from its measured average power.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bansim::energy {

/// One node's lifetime estimate.
struct LifetimeRow {
  std::string node;
  double average_watts{0};    ///< measured over the observation window
  double harvest_watts{0};    ///< long-run mean of the harvest profile
  double state_of_charge{0};  ///< store fill at the end of the window
  double projected_hours{0};  ///< extrapolated time-to-depletion (may be inf)
  bool died{false};           ///< store ran dry during the run itself
  double died_at_hours{0};    ///< simulated depletion instant (when died)

  /// Observed death when there was one, else the projection.
  [[nodiscard]] double lifetime_hours() const {
    return died ? died_at_hours : projected_hours;
  }
};

/// Lifetime table for one cell (nodes in roster order).
struct LifetimeReport {
  double window_seconds{0};  ///< observation window the averages came from
  std::vector<LifetimeRow> rows;

  /// Shortest lifetime across the cell — the "first node death" that ends
  /// a ward deployment.  Infinite when the report is empty or every store
  /// outlives its load.
  [[nodiscard]] double first_death_hours() const;

  /// q-quantile (q in [0,1]) of the per-node lifetimes, nearest-rank.
  [[nodiscard]] double percentile_hours(double q) const;

  /// Empirical CDF: (hours, fraction of nodes dead by then), sorted by
  /// hours — the lifetime curve campaign output plots.
  [[nodiscard]] std::vector<std::pair<double, double>> lifetime_cdf() const;

  /// Human-readable table with first-death / median / last-death footer.
  [[nodiscard]] std::string render() const;

  /// CSV with columns
  /// node,avg_mw,harvest_mw,soc,lifetime_h,died,died_at_h.
  [[nodiscard]] std::string render_csv() const;
};

}  // namespace bansim::energy
