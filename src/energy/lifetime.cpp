#include "energy/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace bansim::energy {

namespace {

std::vector<double> sorted_lifetimes(const LifetimeReport& report) {
  std::vector<double> hours;
  hours.reserve(report.rows.size());
  for (const LifetimeRow& row : report.rows) {
    hours.push_back(row.lifetime_hours());
  }
  std::sort(hours.begin(), hours.end());
  return hours;
}

std::string hours_cell(double h) {
  std::ostringstream out;
  if (std::isinf(h)) {
    out << "inf";
  } else {
    out << std::fixed << std::setprecision(2) << h;
  }
  return out.str();
}

}  // namespace

double LifetimeReport::first_death_hours() const {
  double first = std::numeric_limits<double>::infinity();
  for (const LifetimeRow& row : rows) {
    first = std::min(first, row.lifetime_hours());
  }
  return first;
}

double LifetimeReport::percentile_hours(double q) const {
  if (rows.empty()) return std::numeric_limits<double>::infinity();
  const std::vector<double> hours = sorted_lifetimes(*this);
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::min(static_cast<double>(hours.size() - 1),
               std::floor(clamped * static_cast<double>(hours.size()))));
  return hours[rank];
}

std::vector<std::pair<double, double>> LifetimeReport::lifetime_cdf() const {
  const std::vector<double> hours = sorted_lifetimes(*this);
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(hours.size());
  for (std::size_t i = 0; i < hours.size(); ++i) {
    cdf.emplace_back(hours[i], static_cast<double>(i + 1) /
                                   static_cast<double>(hours.size()));
  }
  return cdf;
}

std::string LifetimeReport::render() const {
  std::ostringstream out;
  out << "Lifetime (window " << std::fixed << std::setprecision(1)
      << window_seconds << " s)\n";
  out << std::left << std::setw(10) << "node" << std::right << std::setw(10)
      << "avg mW" << std::setw(12) << "harvest mW" << std::setw(8) << "SoC %"
      << std::setw(12) << "lifetime h" << std::setw(7) << "died" << "\n";
  for (const LifetimeRow& row : rows) {
    out << std::left << std::setw(10) << row.node << std::right
        << std::setw(10) << std::fixed << std::setprecision(3)
        << row.average_watts * 1e3 << std::setw(12) << std::setprecision(3)
        << row.harvest_watts * 1e3 << std::setw(8) << std::setprecision(1)
        << row.state_of_charge * 100.0 << std::setw(12)
        << hours_cell(row.lifetime_hours()) << std::setw(7)
        << (row.died ? "yes" : "no") << "\n";
  }
  if (!rows.empty()) {
    out << "first death " << hours_cell(first_death_hours()) << " h, median "
        << hours_cell(percentile_hours(0.5)) << " h, last "
        << hours_cell(percentile_hours(1.0)) << " h\n";
  }
  return out.str();
}

std::string LifetimeReport::render_csv() const {
  std::ostringstream out;
  out << "node,avg_mw,harvest_mw,soc,lifetime_h,died,died_at_h\n";
  for (const LifetimeRow& row : rows) {
    out << row.node << "," << row.average_watts * 1e3 << ","
        << row.harvest_watts * 1e3 << "," << row.state_of_charge << ","
        << row.lifetime_hours() << "," << (row.died ? 1 : 0) << ","
        << row.died_at_hours << "\n";
  }
  return out.str();
}

}  // namespace bansim::energy
