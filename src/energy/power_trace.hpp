// Instantaneous-power time series built from meter transitions; feeds the
// figure generators and lets tests assert on the *shape* of a node's power
// profile (beacon spikes, TX bursts, sleep floor).
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bansim::energy {

/// Step-wise power waveform: power is `watts[i]` on [at[i], at[i+1]).
class PowerTrace {
 public:
  /// Appends a step; `when` must be monotonically non-decreasing (throws
  /// std::invalid_argument on a time regression).  Same-instant steps
  /// coalesce: the later power value wins.
  void step(sim::TimePoint when, double watts);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] sim::TimePoint time_at(std::size_t i) const { return points_[i].when; }
  [[nodiscard]] double watts_at(std::size_t i) const { return points_[i].watts; }

  /// Power at an arbitrary instant (0 before the first step).
  [[nodiscard]] double sample(sim::TimePoint t) const;

  /// Integrated energy over [t0, t1], joules.
  [[nodiscard]] double energy(sim::TimePoint t0, sim::TimePoint t1) const;

  /// Peak power over the whole trace.
  [[nodiscard]] double peak() const;

  /// CSV rendering: time_ms,power_mw.
  [[nodiscard]] std::string render_csv() const;

 private:
  struct Point {
    sim::TimePoint when;
    double watts;
  };
  std::vector<Point> points_;
};

}  // namespace bansim::energy
