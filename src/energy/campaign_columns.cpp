#include "energy/campaign_columns.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace bansim::energy {

void CampaignColumns::reserve(std::size_t runs) {
  seed.reserve(runs);
  total_mj.reserve(runs);
  radio_mj.reserve(runs);
  mcu_mj.reserve(runs);
  asic_mj.reserve(runs);
  lifetime_hours.reserve(runs);
  join_ms.reserve(runs);
  data_packets.reserve(runs);
  delivered_packets.reserve(runs);
  joined.reserve(runs);
}

void CampaignColumns::clear() {
  seed.clear();
  total_mj.clear();
  radio_mj.clear();
  mcu_mj.clear();
  asic_mj.clear();
  lifetime_hours.clear();
  join_ms.clear();
  data_packets.clear();
  delivered_packets.clear();
  joined.clear();
}

void CampaignColumns::append_run(const CampaignRunRow& row) {
  seed.push_back(row.seed);
  total_mj.push_back(row.total_mj);
  radio_mj.push_back(row.radio_mj);
  mcu_mj.push_back(row.mcu_mj);
  asic_mj.push_back(row.asic_mj);
  lifetime_hours.push_back(row.lifetime_hours);
  join_ms.push_back(row.join_ms);
  data_packets.push_back(row.data_packets);
  delivered_packets.push_back(row.delivered_packets);
  joined.push_back(row.joined ? 1 : 0);
}

CampaignRunRow CampaignColumns::row(std::size_t i) const {
  CampaignRunRow r;
  r.seed = seed.at(i);
  r.total_mj = total_mj.at(i);
  r.radio_mj = radio_mj.at(i);
  r.mcu_mj = mcu_mj.at(i);
  r.asic_mj = asic_mj.at(i);
  r.lifetime_hours = lifetime_hours.at(i);
  r.join_ms = join_ms.at(i);
  r.data_packets = data_packets.at(i);
  r.delivered_packets = delivered_packets.at(i);
  r.joined = joined.at(i) != 0;
  return r;
}

void CampaignColumns::append_columns(const CampaignColumns& other) {
  const auto extend = [](auto& dst, const auto& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  };
  extend(seed, other.seed);
  extend(total_mj, other.total_mj);
  extend(radio_mj, other.radio_mj);
  extend(mcu_mj, other.mcu_mj);
  extend(asic_mj, other.asic_mj);
  extend(lifetime_hours, other.lifetime_hours);
  extend(join_ms, other.join_ms);
  extend(data_packets, other.data_packets);
  extend(delivered_packets, other.delivered_packets);
  extend(joined, other.joined);
}

std::vector<double> CampaignColumns::pdr_column() const {
  std::vector<double> out;
  out.reserve(runs());
  for (std::size_t i = 0; i < runs(); ++i) {
    out.push_back(data_packets[i] == 0
                      ? 1.0
                      : static_cast<double>(delivered_packets[i]) /
                            static_cast<double>(data_packets[i]));
  }
  return out;
}

double column_mean(std::span<const double> column) {
  double sum = 0;
  std::size_t n = 0;
  for (double v : column) {
    if (!std::isfinite(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double column_percentile(std::span<const double> column, double q,
                         std::vector<double>& scratch) {
  if (column.empty()) return 0.0;
  scratch.assign(column.begin(), column.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ceil(q*n)-th smallest value (1-based).
  const std::size_t n = scratch.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch.end());
  return scratch[rank];
}

namespace {

/// Shared histogram pass: edges span [range_lo, range_hi]; finite entries
/// clamp into the edge bins.  The caller has already filled lo/hi/mean/
/// count/unbounded.
void fill_histogram(MetricCdf& cdf, std::span<const double> column,
                    double range_lo, double range_hi, std::size_t bins) {
  const double width =
      range_hi > range_lo ? (range_hi - range_lo) / static_cast<double>(bins)
                          : 1.0;
  cdf.bin_count.assign(bins, 0);
  for (double v : column) {
    if (!std::isfinite(v)) continue;
    double offset = v - range_lo;
    if (offset < 0) offset = 0;  // below-range entries clamp into bin 0
    auto bin = static_cast<std::size_t>(offset / width);
    if (bin >= bins) bin = bins - 1;  // v >= hi lands past the last edge
    ++cdf.bin_count[bin];
  }

  const auto total = static_cast<double>(cdf.count + cdf.unbounded);
  cdf.upper_edge.clear();
  cdf.cum_fraction.clear();
  cdf.upper_edge.reserve(bins);
  cdf.cum_fraction.reserve(bins);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    running += cdf.bin_count[b];
    cdf.upper_edge.push_back(range_lo + width * static_cast<double>(b + 1));
    cdf.cum_fraction.push_back(
        total > 0 ? static_cast<double>(running) / total : 0.0);
  }
}

/// Min/max/mean/count pass shared by both builders.
void fill_moments(MetricCdf& cdf, std::span<const double> column) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum = 0;
  for (double v : column) {
    if (!std::isfinite(v)) {
      ++cdf.unbounded;
      continue;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
    ++cdf.count;
  }
  if (cdf.count == 0) return;
  cdf.lo = lo;
  cdf.hi = hi;
  cdf.mean = sum / static_cast<double>(cdf.count);
}

}  // namespace

MetricCdf MetricCdf::build(std::span<const double> column, std::size_t bins) {
  MetricCdf cdf;
  if (bins == 0) bins = 1;
  fill_moments(cdf, column);
  if (cdf.count == 0) return cdf;
  fill_histogram(cdf, column, cdf.lo, cdf.hi, bins);
  return cdf;
}

MetricCdf MetricCdf::build_with_range(std::span<const double> column,
                                      double range_lo, double range_hi,
                                      std::size_t bins) {
  if (!(range_lo <= range_hi)) {
    throw std::invalid_argument(
        "MetricCdf::build_with_range: range_lo must be <= range_hi");
  }
  MetricCdf cdf;
  if (bins == 0) bins = 1;
  fill_moments(cdf, column);
  // Fixed edges even for an empty shard, so empty CDFs still merge.
  fill_histogram(cdf, column, range_lo, range_hi, bins);
  return cdf;
}

void MetricCdf::merge(const MetricCdf& other) {
  if (upper_edge.empty()) {
    *this = other;
    return;
  }
  if (other.upper_edge.empty() && other.count == 0 && other.unbounded == 0) {
    return;
  }
  if (other.upper_edge != upper_edge) {
    throw std::invalid_argument(
        "MetricCdf::merge: bin edges differ (both sides must be built with "
        "the same build_with_range range and bin count)");
  }
  const std::uint64_t merged_count = count + other.count;
  if (merged_count > 0) {
    // Weighted recombination; deterministic for a fixed merge order.
    mean = (mean * static_cast<double>(count) +
            other.mean * static_cast<double>(other.count)) /
           static_cast<double>(merged_count);
    lo = count == 0 ? other.lo : other.count == 0 ? lo : std::min(lo, other.lo);
    hi = count == 0 ? other.hi : other.count == 0 ? hi : std::max(hi, other.hi);
  }
  count = merged_count;
  unbounded += other.unbounded;
  for (std::size_t b = 0; b < bin_count.size(); ++b) {
    bin_count[b] += other.bin_count[b];
  }
  const auto total = static_cast<double>(count + unbounded);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < bin_count.size(); ++b) {
    running += bin_count[b];
    cum_fraction[b] = total > 0 ? static_cast<double>(running) / total : 0.0;
  }
}

double MetricCdf::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double bounded_fraction =
      static_cast<double>(count) / static_cast<double>(count + unbounded);
  if (q > bounded_fraction) return std::numeric_limits<double>::infinity();
  double below = 0;
  double lower = lo;
  for (std::size_t b = 0; b < cum_fraction.size(); ++b) {
    if (cum_fraction[b] >= q) {
      const double span = cum_fraction[b] - below;
      const double t = span > 0 ? (q - below) / span : 1.0;
      return lower + t * (upper_edge[b] - lower);
    }
    below = cum_fraction[b];
    lower = upper_edge[b];
  }
  return hi;
}

std::string MetricCdf::render_csv() const {
  std::string csv = "value,cum_fraction\n";
  char row[64];
  for (std::size_t b = 0; b < upper_edge.size(); ++b) {
    std::snprintf(row, sizeof(row), "%.6g,%.6g\n", upper_edge[b],
                  cum_fraction[b]);
    csv += row;
  }
  return csv;
}

}  // namespace bansim::energy
