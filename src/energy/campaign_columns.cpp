#include "energy/campaign_columns.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bansim::energy {

void CampaignColumns::reserve(std::size_t runs) {
  seed.reserve(runs);
  total_mj.reserve(runs);
  radio_mj.reserve(runs);
  mcu_mj.reserve(runs);
  asic_mj.reserve(runs);
  lifetime_hours.reserve(runs);
  data_packets.reserve(runs);
  joined.reserve(runs);
}

void CampaignColumns::clear() {
  seed.clear();
  total_mj.clear();
  radio_mj.clear();
  mcu_mj.clear();
  asic_mj.clear();
  lifetime_hours.clear();
  data_packets.clear();
  joined.clear();
}

void CampaignColumns::append_run(std::uint64_t run_seed, double run_total_mj,
                                 double run_radio_mj, double run_mcu_mj,
                                 double run_asic_mj, double run_lifetime_hours,
                                 std::uint64_t run_data_packets,
                                 bool run_joined) {
  seed.push_back(run_seed);
  total_mj.push_back(run_total_mj);
  radio_mj.push_back(run_radio_mj);
  mcu_mj.push_back(run_mcu_mj);
  asic_mj.push_back(run_asic_mj);
  lifetime_hours.push_back(run_lifetime_hours);
  data_packets.push_back(run_data_packets);
  joined.push_back(run_joined ? 1 : 0);
}

void CampaignColumns::append_columns(const CampaignColumns& other) {
  const auto extend = [](auto& dst, const auto& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  };
  extend(seed, other.seed);
  extend(total_mj, other.total_mj);
  extend(radio_mj, other.radio_mj);
  extend(mcu_mj, other.mcu_mj);
  extend(asic_mj, other.asic_mj);
  extend(lifetime_hours, other.lifetime_hours);
  extend(data_packets, other.data_packets);
  extend(joined, other.joined);
}

double column_mean(std::span<const double> column) {
  double sum = 0;
  std::size_t n = 0;
  for (double v : column) {
    if (!std::isfinite(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double column_percentile(std::span<const double> column, double q,
                         std::vector<double>& scratch) {
  if (column.empty()) return 0.0;
  scratch.assign(column.begin(), column.end());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ceil(q*n)-th smallest value (1-based).
  const std::size_t n = scratch.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch.end());
  return scratch[rank];
}

MetricCdf MetricCdf::build(std::span<const double> column, std::size_t bins) {
  MetricCdf cdf;
  if (bins == 0) bins = 1;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum = 0;
  for (double v : column) {
    if (!std::isfinite(v)) {
      ++cdf.unbounded;
      continue;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
    ++cdf.count;
  }
  if (cdf.count == 0) return cdf;
  cdf.lo = lo;
  cdf.hi = hi;
  cdf.mean = sum / static_cast<double>(cdf.count);

  const double width = hi > lo ? (hi - lo) / static_cast<double>(bins) : 1.0;
  std::vector<std::uint64_t> histogram(bins, 0);
  for (double v : column) {
    if (!std::isfinite(v)) continue;
    auto bin = static_cast<std::size_t>((v - lo) / width);
    if (bin >= bins) bin = bins - 1;  // v == hi lands past the last edge
    ++histogram[bin];
  }

  const auto total =
      static_cast<double>(cdf.count + cdf.unbounded);
  cdf.upper_edge.reserve(bins);
  cdf.cum_fraction.reserve(bins);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    running += histogram[b];
    cdf.upper_edge.push_back(lo + width * static_cast<double>(b + 1));
    cdf.cum_fraction.push_back(static_cast<double>(running) / total);
  }
  return cdf;
}

double MetricCdf::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double bounded_fraction =
      static_cast<double>(count) / static_cast<double>(count + unbounded);
  if (q > bounded_fraction) return std::numeric_limits<double>::infinity();
  double below = 0;
  double lower = lo;
  for (std::size_t b = 0; b < cum_fraction.size(); ++b) {
    if (cum_fraction[b] >= q) {
      const double span = cum_fraction[b] - below;
      const double t = span > 0 ? (q - below) / span : 1.0;
      return lower + t * (upper_edge[b] - lower);
    }
    below = cum_fraction[b];
    lower = upper_edge[b];
  }
  return hi;
}

std::string MetricCdf::render_csv() const {
  std::string csv = "value,cum_fraction\n";
  char row[64];
  for (std::size_t b = 0; b < upper_edge.size(); ++b) {
    std::snprintf(row, sizeof(row), "%.6g,%.6g\n", upper_edge[b],
                  cum_fraction[b]);
    csv += row;
  }
  return csv;
}

}  // namespace bansim::energy
