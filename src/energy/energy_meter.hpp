// State-residency energy metering.
//
// The paper's estimation model computes E = I * Vdd * t_state for every
// power state of every component (Section 4).  EnergyMeter is that formula
// as a reusable object: a component registers its states with measured
// currents, reports transitions, and the meter integrates charge over time.
// Both the high-fidelity reference stack and the OS-level estimator are
// built on this primitive; they differ only in *when* they report
// transitions and how many states they distinguish.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace bansim::sim {
class CheckHooks;
}

namespace bansim::energy {

/// Static description of one power state of a component.
struct PowerState {
  std::string name;       ///< e.g. "rx", "tx", "active", "lpm1"
  double current_amps{0};  ///< measured supply current while in this state
};

/// Integrates I*V*t across the declared power states of one component.
class EnergyMeter {
 public:
  /// `states` must be non-empty; the component starts in state 0 at `start`.
  EnergyMeter(std::string component, double supply_volts,
              std::vector<PowerState> states,
              sim::TimePoint start = sim::TimePoint::zero());

  /// Reports that the component entered `state` at time `when`.
  /// Throws std::out_of_range for a state outside [0, num_states()), as do
  /// all other state-addressed accessors — a silent out-of-bounds write
  /// here would skew every validation table downstream.
  void transition(int state, sim::TimePoint when);

  /// Closes the books at `when` without entering a new state: the
  /// in-progress stretch is flushed into the residency accumulator and the
  /// entry counters are untouched.  Idempotent — a teardown path that
  /// closes every meter "at sim end" may run twice (e.g. an explicit
  /// end-of-measurement close followed by a destructor sweep) without
  /// double-counting entries, which a plain transition(current_state(), t)
  /// would do.
  void end_state(sim::TimePoint when);

  /// Run-reset: restores the meter to its just-constructed accounting —
  /// state 0 entered at `start`, zero residency, zero transients — while
  /// the component name, supply voltage, state table and any attached
  /// check hooks survive.  Works regardless of what state a crashed or
  /// mid-run component left the meter in.
  void reset(sim::TimePoint start = sim::TimePoint::zero());

  [[nodiscard]] int current_state() const { return residency_.current_state(); }
  [[nodiscard]] const std::string& component() const { return component_; }
  [[nodiscard]] double supply_volts() const { return supply_volts_; }
  [[nodiscard]] std::size_t num_states() const { return states_.size(); }
  [[nodiscard]] const PowerState& state(std::size_t i) const { return states_[i]; }

  /// Time spent in `state` up to `now` (includes the in-progress stretch).
  [[nodiscard]] sim::Duration time_in(int state, sim::TimePoint now) const {
    checked_state(state, "time_in");
    return residency_.time_in(state, now);
  }

  /// Number of entries into `state` (diagnostics: wakeups, TX bursts, ...).
  [[nodiscard]] std::uint64_t entries(int state) const {
    checked_state(state, "entries");
    return residency_.entries(state);
  }

  /// Energy consumed in `state` up to `now`, in joules.
  [[nodiscard]] double energy_in(int state, sim::TimePoint now) const;

  /// Total energy across all states up to `now`, in joules.
  [[nodiscard]] double total_energy(sim::TimePoint now) const;

  /// Average power over [start, now], in watts.
  [[nodiscard]] double average_power(sim::TimePoint now) const;

  /// Adds a lump of energy not tied to state residency (e.g. a fixed-cost
  /// transient such as an oscillator start-up).  Attributed to `state`.
  void add_transient(int state, double joules);

  /// Metering start instant (residency baseline for conservation checks).
  [[nodiscard]] sim::TimePoint start() const { return start_; }

  /// Attaches a checking-layer observer notified of every transition and
  /// transient (nullptr detaches).  Observers are pure readers; attaching
  /// one never changes metered energies.
  void set_check_hooks(sim::CheckHooks* hooks) { check_hooks_ = hooks; }

 private:
  /// Validates a caller-supplied state index; returns it widened.  Throws
  /// std::out_of_range naming the component and call site.
  std::size_t checked_state(int state, const char* what) const;

  std::string component_;
  double supply_volts_;
  std::vector<PowerState> states_;
  std::vector<double> transient_joules_;
  sim::StateResidency residency_;
  sim::TimePoint start_;
  sim::CheckHooks* check_hooks_{nullptr};
};

/// Per-component breakdown row extracted from a meter.
struct ComponentEnergy {
  std::string component;
  double joules{0};
  std::vector<std::pair<std::string, double>> per_state;  ///< (state, joules)
};

/// The named meters of one node, plus constant loads (the 25-ch ASIC is a
/// constant 10.5 mW that the paper excludes from validation but documents).
class EnergyLedger {
 public:
  /// Registers a meter and returns a stable index to address it.
  std::size_t add_meter(EnergyMeter meter);

  /// Registers a constant power draw present from t=0 (watts).
  void add_constant_load(std::string name, double watts);

  [[nodiscard]] EnergyMeter& meter(std::size_t idx) { return meters_[idx]; }
  [[nodiscard]] const EnergyMeter& meter(std::size_t idx) const { return meters_[idx]; }
  [[nodiscard]] std::size_t num_meters() const { return meters_.size(); }

  /// Looks a meter up by component name; returns nullptr if absent.
  [[nodiscard]] const EnergyMeter* find(const std::string& component) const;

  /// Snapshot of every component's energy up to `now`.
  [[nodiscard]] std::vector<ComponentEnergy> breakdown(sim::TimePoint now) const;

  /// Sum over all meters and constant loads, joules.
  [[nodiscard]] double total_energy(sim::TimePoint now) const;

 private:
  std::vector<EnergyMeter> meters_;
  std::vector<std::pair<std::string, double>> constant_loads_;
};

}  // namespace bansim::energy
