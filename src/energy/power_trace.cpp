#include "energy/power_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace bansim::energy {

void PowerTrace::step(sim::TimePoint when, double watts) {
  if (!points_.empty() && when < points_.back().when) {
    // A step before the last one would silently corrupt sample()'s binary
    // search; report it as the caller bug it is (in every build type — a
    // debug assert would let release figure generators integrate garbage).
    throw std::invalid_argument("PowerTrace::step: time moved backwards (" +
                                when.to_string() + " < " +
                                points_.back().when.to_string() + ")");
  }
  if (!points_.empty() && points_.back().when == when) {
    points_.back().watts = watts;  // coalesce same-instant steps
    return;
  }
  points_.push_back({when, watts});
}

double PowerTrace::sample(sim::TimePoint t) const {
  if (points_.empty() || t < points_.front().when) return 0.0;
  // Last step with when <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::TimePoint lhs, const Point& p) { return lhs < p.when; });
  return std::prev(it)->watts;
}

double PowerTrace::energy(sim::TimePoint t0, sim::TimePoint t1) const {
  if (points_.empty() || t1 <= t0) return 0.0;
  double joules = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const sim::TimePoint seg_start = points_[i].when;
    const sim::TimePoint seg_end =
        (i + 1 < points_.size()) ? points_[i + 1].when : t1;
    const sim::TimePoint lo = std::max(seg_start, t0);
    const sim::TimePoint hi = std::min(seg_end, t1);
    if (hi > lo) joules += points_[i].watts * (hi - lo).to_seconds();
  }
  return joules;
}

double PowerTrace::peak() const {
  double p = 0.0;
  for (const auto& pt : points_) p = std::max(p, pt.watts);
  return p;
}

std::string PowerTrace::render_csv() const {
  std::string out = "time_ms,power_mw\n";
  char line[64];
  for (const auto& pt : points_) {
    std::snprintf(line, sizeof line, "%.6f,%.6f\n", pt.when.to_milliseconds(),
                  pt.watts * 1e3);
    out += line;
  }
  return out;
}

}  // namespace bansim::energy
