// Formatting of energy results: per-node component breakdowns, the paper's
// Real-vs-Sim comparison tables, and CSV export for downstream plotting.
#pragma once

#include <string>
#include <vector>

#include "energy/energy_meter.hpp"

namespace bansim::energy {

/// One node's energy snapshot at the end of a run.
struct NodeEnergy {
  std::string node;
  std::vector<ComponentEnergy> components;

  [[nodiscard]] double total_joules() const;

  /// Energy of one component (0 if the node has no such component).
  [[nodiscard]] double component_joules(const std::string& component) const;
};

/// Renders a per-node, per-component table in millijoules.
[[nodiscard]] std::string render_energy_table(const std::vector<NodeEnergy>& nodes);

/// Renders a CSV with columns node,component,state,energy_mj.
[[nodiscard]] std::string render_energy_csv(const std::vector<NodeEnergy>& nodes);

/// Inverse of render_energy_csv: parses the header + rows back into
/// per-node snapshots (per-state values only; component totals are
/// recomputed as the per-state sum).  Throws std::invalid_argument on a
/// malformed header or row.
[[nodiscard]] std::vector<NodeEnergy> parse_energy_csv(const std::string& csv);

/// One row of a paper-style validation table: a swept parameter value plus
/// reference ("Real") and estimated ("Sim") energies for radio and MCU.
struct ValidationRow {
  std::string parameter;   ///< e.g. "205" (Hz) or "3" (nodes)
  double cycle_ms{0};
  double radio_real_mj{0};
  double radio_sim_mj{0};
  double mcu_real_mj{0};
  double mcu_sim_mj{0};

  [[nodiscard]] double radio_error() const;  ///< |sim-real|/real
  [[nodiscard]] double mcu_error() const;
};

/// A full validation table (one of the paper's Tables 1-4).
struct ValidationTable {
  std::string title;
  std::string parameter_name;  ///< header of the swept column
  std::vector<ValidationRow> rows;

  [[nodiscard]] double avg_radio_error() const;
  [[nodiscard]] double avg_mcu_error() const;

  /// Paper-style rendering:
  ///   param  Cycle(ms)  Radio Real  Radio Sim  uC Real  uC Sim
  /// with the average errors appended, matching Tables 1-4.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::string render_csv() const;
};

/// Inverse of ValidationTable::render_csv for the six value columns (the
/// derived error columns are recomputed, not read back).  Title and
/// parameter name are not part of the CSV and come back empty.  Throws
/// std::invalid_argument on a malformed header or row.
[[nodiscard]] ValidationTable parse_validation_csv(const std::string& csv);

}  // namespace bansim::energy
