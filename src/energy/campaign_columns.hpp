// Columnar (struct-of-arrays) campaign metrics.
//
// A population-scale Monte Carlo campaign runs thousands of patients, and a
// short campaign unit finishes in tens of microseconds — at that scale,
// materialising a per-run report object (NodeEnergy's strings + per-state
// vectors) costs more than the simulation it describes.  CampaignColumns
// keeps one scalar per metric per run in parallel columns instead: a run
// appends by reading its meters directly, with no intermediate report, and
// the reductions the campaign needs (mean, percentiles, the lifetime CDF)
// stream over a column in one pass.  reserve() once per campaign; appends
// are then allocation-free, matching the reset-per-run steady state.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace bansim::energy {

/// One run's scalar metrics — the row every column stores one entry of.
/// This is also the unit the campaign store serializes, so keep it plain
/// scalars (bit-exact round-trip through the on-disk record framing).
struct CampaignRunRow {
  std::uint64_t seed{0};
  double total_mj{0};
  double radio_mj{0};
  double mcu_mj{0};
  double asic_mj{0};
  /// Projected hours until the ward's first store depletes (+inf when
  /// harvest covers the load; see MetricCdf's unbounded tail).
  double lifetime_hours{std::numeric_limits<double>::infinity()};
  /// Time until the whole cell had joined and settled (the campaign's
  /// join-latency metric); 0 when the run never joined.
  double join_ms{0};
  std::uint64_t data_packets{0};
  /// Payloads counted at the base station over the measured window; with
  /// data_packets this gives the run's delivery ratio.
  std::uint64_t delivered_packets{0};
  bool joined{false};

  /// Delivered / sent over the measured window (1 when nothing was sent —
  /// an idle cell dropped nothing).
  [[nodiscard]] double pdr() const {
    return data_packets == 0 ? 1.0
                             : static_cast<double>(delivered_packets) /
                                   static_cast<double>(data_packets);
  }

  [[nodiscard]] bool operator==(const CampaignRunRow&) const = default;
};

/// Per-run metric columns of one campaign.  Every column has exactly
/// runs() entries; append_run() grows them in lockstep.
struct CampaignColumns {
  std::vector<std::uint64_t> seed;
  std::vector<double> total_mj;
  std::vector<double> radio_mj;
  std::vector<double> mcu_mj;
  std::vector<double> asic_mj;
  std::vector<double> lifetime_hours;
  std::vector<double> join_ms;
  std::vector<std::uint64_t> data_packets;
  std::vector<std::uint64_t> delivered_packets;
  std::vector<std::uint8_t> joined;

  void reserve(std::size_t runs);
  void clear();
  [[nodiscard]] std::size_t runs() const { return seed.size(); }

  /// Appends one run's scalars to every column.
  void append_run(const CampaignRunRow& row);

  /// The i-th run read back out of the columns.
  [[nodiscard]] CampaignRunRow row(std::size_t i) const;

  /// Appends every run of `other` (merging per-worker/per-shard columns).
  void append_columns(const CampaignColumns& other);

  /// Per-run delivery ratios (delivered/sent, 1 when idle) — the PDR
  /// distribution column report percentiles run over.
  [[nodiscard]] std::vector<double> pdr_column() const;

  /// Exact elementwise equality across every column (the currency of the
  /// resumed-vs-uninterrupted aggregate checks).
  [[nodiscard]] bool operator==(const CampaignColumns& other) const = default;
};

/// Mean of a column (0 for an empty one); non-finite entries are skipped.
[[nodiscard]] double column_mean(std::span<const double> column);

/// Exact nearest-rank percentile of a column, q in [0, 1].  `scratch` is
/// the caller's sort buffer, reused across calls so a summary that asks
/// for p5/p50/p95 allocates at most once.
[[nodiscard]] double column_percentile(std::span<const double> column,
                                       double q, std::vector<double>& scratch);

/// Fixed-bin cumulative distribution built in one streaming pass over a
/// column — the campaign's CDF artifact without storing a sorted copy.
/// Non-finite entries (a node that never depletes projects +inf hours)
/// count into `unbounded`, so cum_fraction asymptotes below 1 when part of
/// the population outlives any horizon.
struct MetricCdf {
  double lo{0};
  double hi{0};
  double mean{0};
  std::uint64_t count{0};      ///< finite entries binned below
  std::uint64_t unbounded{0};  ///< non-finite entries (never-depleting)
  std::vector<double> upper_edge;       ///< bin upper edges, ascending
  std::vector<std::uint64_t> bin_count; ///< finite entries per bin
  std::vector<double> cum_fraction;     ///< fraction of ALL entries <= edge

  /// Two passes over `column`: min/max/mean, then the histogram.
  [[nodiscard]] static MetricCdf build(std::span<const double> column,
                                       std::size_t bins = 64);

  /// Histogram over caller-fixed edges [range_lo, range_hi] instead of the
  /// column's own min/max — the shard-mergeable form: two CDFs built over
  /// the same range and bin count merge exactly.  Finite entries outside
  /// the range clamp into the first/last bin.  Requires range_lo <=
  /// range_hi (throws std::invalid_argument otherwise).
  [[nodiscard]] static MetricCdf build_with_range(
      std::span<const double> column, double range_lo, double range_hi,
      std::size_t bins = 64);

  /// Exact streaming merge: adds `other`'s entries into this CDF.  Both
  /// sides must share identical bin edges (same range and bin count, as
  /// built by build_with_range) — throws std::invalid_argument otherwise.
  /// An empty side (no edges yet) adopts the other's edges.  Counts add
  /// integrally and the mean recombines by weight, so merging shard CDFs
  /// in any order yields the same bin counts as one whole-column build.
  void merge(const MetricCdf& other);

  /// Value below which fraction q of ALL entries falls (linear within the
  /// bin); +inf when q reaches into the unbounded tail.
  [[nodiscard]] double percentile(double q) const;

  /// CSV rows `value,cum_fraction` (header included) — the artifact a
  /// campaign smoke job uploads.
  [[nodiscard]] std::string render_csv() const;
};

}  // namespace bansim::energy
