// Columnar (struct-of-arrays) campaign metrics.
//
// A population-scale Monte Carlo campaign runs thousands of patients, and a
// short campaign unit finishes in tens of microseconds — at that scale,
// materialising a per-run report object (NodeEnergy's strings + per-state
// vectors) costs more than the simulation it describes.  CampaignColumns
// keeps one scalar per metric per run in parallel columns instead: a run
// appends by reading its meters directly, with no intermediate report, and
// the reductions the campaign needs (mean, percentiles, the lifetime CDF)
// stream over a column in one pass.  reserve() once per campaign; appends
// are then allocation-free, matching the reset-per-run steady state.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bansim::energy {

/// Per-run metric columns of one campaign.  Every column has exactly
/// runs() entries; append_run() grows them in lockstep.
struct CampaignColumns {
  std::vector<std::uint64_t> seed;
  std::vector<double> total_mj;
  std::vector<double> radio_mj;
  std::vector<double> mcu_mj;
  std::vector<double> asic_mj;
  /// Projected hours until the ward's first store depletes (+inf when
  /// harvest covers the load; see MetricCdf's unbounded tail).
  std::vector<double> lifetime_hours;
  std::vector<std::uint64_t> data_packets;
  std::vector<std::uint8_t> joined;

  void reserve(std::size_t runs);
  void clear();
  [[nodiscard]] std::size_t runs() const { return seed.size(); }

  /// Appends one run's scalars to every column.
  void append_run(std::uint64_t run_seed, double run_total_mj,
                  double run_radio_mj, double run_mcu_mj, double run_asic_mj,
                  double run_lifetime_hours, std::uint64_t run_data_packets,
                  bool run_joined);

  /// Appends every run of `other` (merging per-worker columns).
  void append_columns(const CampaignColumns& other);
};

/// Mean of a column (0 for an empty one); non-finite entries are skipped.
[[nodiscard]] double column_mean(std::span<const double> column);

/// Exact nearest-rank percentile of a column, q in [0, 1].  `scratch` is
/// the caller's sort buffer, reused across calls so a summary that asks
/// for p5/p50/p95 allocates at most once.
[[nodiscard]] double column_percentile(std::span<const double> column,
                                       double q, std::vector<double>& scratch);

/// Fixed-bin cumulative distribution built in one streaming pass over a
/// column — the campaign's CDF artifact without storing a sorted copy.
/// Non-finite entries (a node that never depletes projects +inf hours)
/// count into `unbounded`, so cum_fraction asymptotes below 1 when part of
/// the population outlives any horizon.
struct MetricCdf {
  double lo{0};
  double hi{0};
  double mean{0};
  std::uint64_t count{0};      ///< finite entries binned below
  std::uint64_t unbounded{0};  ///< non-finite entries (never-depleting)
  std::vector<double> upper_edge;    ///< bin upper edges, ascending
  std::vector<double> cum_fraction;  ///< fraction of ALL entries <= edge

  /// Two passes over `column`: min/max/mean, then the histogram.
  [[nodiscard]] static MetricCdf build(std::span<const double> column,
                                       std::size_t bins = 64);

  /// Value below which fraction q of ALL entries falls (linear within the
  /// bin); +inf when q reaches into the unbounded tail.
  [[nodiscard]] double percentile(double q) const;

  /// CSV rows `value,cum_fraction` (header included) — the artifact a
  /// campaign smoke job uploads.
  [[nodiscard]] std::string render_csv() const;
};

}  // namespace bansim::energy
