#include "energy/energy_meter.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/check_hooks.hpp"

namespace bansim::energy {

EnergyMeter::EnergyMeter(std::string component, double supply_volts,
                         std::vector<PowerState> states, sim::TimePoint start)
    : component_{std::move(component)}, supply_volts_{supply_volts},
      states_{std::move(states)}, transient_joules_(states_.size(), 0.0),
      residency_{states_.size(), 0, start}, start_{start} {
  assert(!states_.empty());
  assert(supply_volts_ > 0.0);
}

std::size_t EnergyMeter::checked_state(int state, const char* what) const {
  if (state < 0 || static_cast<std::size_t>(state) >= states_.size()) {
    throw std::out_of_range("EnergyMeter(" + component_ + ")::" + what +
                            ": state " + std::to_string(state) +
                            " outside [0, " + std::to_string(states_.size()) +
                            ")");
  }
  return static_cast<std::size_t>(state);
}

void EnergyMeter::transition(int state, sim::TimePoint when) {
  checked_state(state, "transition");
  residency_.transition(state, when);
  if (check_hooks_) check_hooks_->on_meter_transition(this, state, when);
}

void EnergyMeter::end_state(sim::TimePoint when) {
  residency_.close(when);
}

void EnergyMeter::reset(sim::TimePoint start) {
  std::fill(transient_joules_.begin(), transient_joules_.end(), 0.0);
  residency_.reset(0, start);
  start_ = start;
}

double EnergyMeter::energy_in(int state, sim::TimePoint now) const {
  const std::size_t i = checked_state(state, "energy_in");
  const double t = residency_.time_in(state, now).to_seconds();
  return states_[i].current_amps * supply_volts_ * t + transient_joules_[i];
}

double EnergyMeter::total_energy(sim::TimePoint now) const {
  double e = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    e += energy_in(static_cast<int>(i), now);
  }
  return e;
}

double EnergyMeter::average_power(sim::TimePoint now) const {
  const double t = (now - start_).to_seconds();
  return t > 0.0 ? total_energy(now) / t : 0.0;
}

void EnergyMeter::add_transient(int state, double joules) {
  transient_joules_[checked_state(state, "add_transient")] += joules;
  if (check_hooks_) check_hooks_->on_meter_transient(this, state, joules);
}

std::size_t EnergyLedger::add_meter(EnergyMeter meter) {
  meters_.push_back(std::move(meter));
  return meters_.size() - 1;
}

void EnergyLedger::add_constant_load(std::string name, double watts) {
  constant_loads_.emplace_back(std::move(name), watts);
}

const EnergyMeter* EnergyLedger::find(const std::string& component) const {
  for (const auto& m : meters_) {
    if (m.component() == component) return &m;
  }
  return nullptr;
}

std::vector<ComponentEnergy> EnergyLedger::breakdown(sim::TimePoint now) const {
  std::vector<ComponentEnergy> rows;
  rows.reserve(meters_.size() + constant_loads_.size());
  for (const auto& m : meters_) {
    ComponentEnergy row;
    row.component = m.component();
    row.joules = m.total_energy(now);
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      row.per_state.emplace_back(m.state(s).name,
                                 m.energy_in(static_cast<int>(s), now));
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [name, watts] : constant_loads_) {
    ComponentEnergy row;
    row.component = name;
    row.joules = watts * now.to_seconds();
    row.per_state.emplace_back("constant", row.joules);
    rows.push_back(std::move(row));
  }
  return rows;
}

double EnergyLedger::total_energy(sim::TimePoint now) const {
  double e = 0.0;
  for (const auto& m : meters_) e += m.total_energy(now);
  for (const auto& [name, watts] : constant_loads_) e += watts * now.to_seconds();
  return e;
}

}  // namespace bansim::energy
