// Structured event tracing.
//
// Models emit timestamped records into a Tracer; sinks decide what happens
// to them (discarded, printed, retained in memory for tests and for the
// TDMA-timeline figures).  Tracing is designed to be cheap when nobody
// listens: a category check is one array load, node names are interned once
// at component construction, and hot call sites use the *deferred* emit
// overload — they pass a message-building callable that is only invoked
// when the category is enabled, so a tracing-off run formats nothing and
// allocates nothing.  When tracing is on, messages are composed in a
// fixed-capacity TraceMessage buffer (integers and times formatted without
// heap temporaries) and copied into the record once.
#pragma once

#include <array>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

/// Trace categories, one bit of filtering granularity per subsystem.
enum class TraceCategory : std::uint8_t {
  kKernel = 0,   ///< event-queue / simulator internals
  kOs,           ///< task scheduler, timers, power manager
  kMcu,          ///< microcontroller state transitions
  kRadio,        ///< radio state machine, FIFO, CRC
  kChannel,      ///< air frames, collisions
  kMac,          ///< TDMA slots, beacons, joins
  kApp,          ///< application-level events
  kEnergy,       ///< energy meter transitions
  kCount
};

[[nodiscard]] const char* to_string(TraceCategory c);

/// Interned node-name handle.  Id 0 is always the anonymous/global node "".
using TraceNodeId = std::uint32_t;

/// Fixed-capacity message builder for the deferred emit path.  Everything
/// is formatted into an internal char buffer with to_chars-style
/// primitives, so composing the common "state -> idle (42 cyc)" messages
/// performs no heap allocation.  Messages longer than the capacity are
/// truncated (traces are human-readable, not a wire format).
class TraceMessage {
 public:
  static constexpr std::size_t kCapacity = 160;

  TraceMessage& operator<<(std::string_view s) {
    append(s.data(), s.size());
    return *this;
  }

  TraceMessage& operator<<(char c) {
    if (size_ < kCapacity) buf_[size_++] = c;
    return *this;
  }

  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, char> &&
             !std::is_same_v<T, bool>)
  TraceMessage& operator<<(T value) {
    char tmp[24];
    const auto [end, ec] = std::to_chars(tmp, tmp + sizeof tmp, value);
    if (ec == std::errc{}) append(tmp, static_cast<std::size_t>(end - tmp));
    return *this;
  }

  TraceMessage& operator<<(double value);

  /// Renders with the same auto-chosen unit as Duration::to_string()
  /// ("1.500 ms"), but into the fixed buffer.
  TraceMessage& operator<<(Duration d);
  TraceMessage& operator<<(TimePoint t);

  [[nodiscard]] std::string_view view() const { return {buf_, size_}; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void append(const char* data, std::size_t n) {
    const std::size_t room = kCapacity - size_;
    if (n > room) n = room;
    std::memcpy(buf_ + size_, data, n);
    size_ += n;
  }

  char buf_[kCapacity];
  std::size_t size_{0};
};

/// One trace record.  The node name lives in the originating Tracer's
/// intern table; records (and copies of them, e.g. in a MemorySink) remain
/// valid as long as that Tracer does.
struct TraceRecord {
  TimePoint when;
  TraceCategory category{TraceCategory::kKernel};
  TraceNodeId node_id{0};
  std::string message;  ///< human-readable payload

  /// Emitting node name, empty for global events.
  [[nodiscard]] const std::string& node() const;

  // Set by Tracer::emit; points into the Tracer's intern table.
  const std::string* node_name{nullptr};
};

/// Destination of trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceRecord& record) = 0;
};

/// Retains records in memory; used by tests and the timeline renderers.
class MemorySink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override { records_.push_back(record); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Writes "t=... [cat] node: message" lines to stdout.
class StdoutSink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override;
};

/// Category-filtered fan-out of trace records to registered sinks.
class Tracer {
 public:
  Tracer();

  /// Registers a sink and enables the categories it wants.
  void attach(std::shared_ptr<TraceSink> sink,
              std::initializer_list<TraceCategory> categories);

  /// Run-reset hook of the reuse protocol (DESIGN.md).  The interned-name
  /// table, its ids, attached sinks and category switches all survive: a
  /// reused cell re-interns the same node names and must get the same
  /// TraceNodeIds back without re-hashing growth, and the caller's sink
  /// wiring is configuration, not run state.  Nothing else in the tracer
  /// is per-run, so this is deliberately a no-op — it exists so the
  /// protocol is explicit at every layer and pinned by tests.
  void reset() {}

  /// Enables/disables a category globally.
  void set_enabled(TraceCategory category, bool enabled) {
    enabled_[static_cast<std::size_t>(category)] = enabled;
  }

  [[nodiscard]] bool enabled(TraceCategory category) const {
    return enabled_[static_cast<std::size_t>(category)];
  }

  /// Interns `name`, returning a stable handle; the same name always maps
  /// to the same id.  Components intern their node name once at
  /// construction and pass the handle to emit().
  TraceNodeId intern(std::string_view name);

  /// Pre-sizes the intern table for `names` distinct node names, so cell
  /// construction doesn't rehash it incrementally during warm-up.
  void reserve(std::size_t names) { index_.reserve(names); }

  /// The name behind an interned handle.
  [[nodiscard]] const std::string& node_name(TraceNodeId id) const {
    return names_[id];
  }

  /// Deferred-formatting emit: the hot path.  `build` is only invoked when
  /// the category is enabled, so call sites pay one branch — no message
  /// formatting, no allocation — in the (default) tracing-off case:
  ///
  ///   tracer.emit(now, TraceCategory::kMac, trace_node_,
  ///               [&](sim::TraceMessage& m) { m << "slot " << slot; });
  template <typename BuildFn>
    requires std::is_invocable_v<BuildFn&, TraceMessage&>
  void emit(TimePoint when, TraceCategory category, TraceNodeId node,
            BuildFn&& build) {
    if (!enabled(category)) return;
    TraceMessage message;
    build(message);
    dispatch(when, category, node, message.view());
  }

  /// Deferred emit for call sites without a pre-interned handle.
  template <typename BuildFn>
    requires std::is_invocable_v<BuildFn&, TraceMessage&>
  void emit(TimePoint when, TraceCategory category, std::string_view node,
            BuildFn&& build) {
    if (!enabled(category)) return;
    TraceMessage message;
    build(message);
    dispatch(when, category, intern(node), message.view());
  }

  /// Eager overload for pre-built messages (tests, cold paths).
  void emit(TimePoint when, TraceCategory category, TraceNodeId node,
            std::string_view message) {
    if (!enabled(category)) return;
    dispatch(when, category, node, message);
  }

  /// Eager overload that also interns on the fly.
  void emit(TimePoint when, TraceCategory category, std::string_view node,
            std::string_view message) {
    if (!enabled(category)) return;
    dispatch(when, category, intern(node), message);
  }

 private:
  /// Builds the record and fans it out.  Precondition: category enabled.
  void dispatch(TimePoint when, TraceCategory category, TraceNodeId node,
                std::string_view message);

  std::array<bool, static_cast<std::size_t>(TraceCategory::kCount)> enabled_{};
  std::vector<std::shared_ptr<TraceSink>> sinks_;
  // Interned names.  std::deque keeps element addresses stable, so the
  // string_view keys of index_ and the node_name pointers handed to records
  // survive growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, TraceNodeId> index_;
};

}  // namespace bansim::sim
