// Structured event tracing.
//
// Models emit timestamped records into a Tracer; sinks decide what happens
// to them (discarded, printed, retained in memory for tests and for the
// TDMA-timeline figures).  Tracing is designed to be cheap when nobody
// listens: a category check is one array load, and node names are interned
// once at component construction so hot-path emission never allocates for
// the node field.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

/// Trace categories, one bit of filtering granularity per subsystem.
enum class TraceCategory : std::uint8_t {
  kKernel = 0,   ///< event-queue / simulator internals
  kOs,           ///< task scheduler, timers, power manager
  kMcu,          ///< microcontroller state transitions
  kRadio,        ///< radio state machine, FIFO, CRC
  kChannel,      ///< air frames, collisions
  kMac,          ///< TDMA slots, beacons, joins
  kApp,          ///< application-level events
  kEnergy,       ///< energy meter transitions
  kCount
};

[[nodiscard]] const char* to_string(TraceCategory c);

/// Interned node-name handle.  Id 0 is always the anonymous/global node "".
using TraceNodeId = std::uint32_t;

/// One trace record.  The node name lives in the originating Tracer's
/// intern table; records (and copies of them, e.g. in a MemorySink) remain
/// valid as long as that Tracer does.
struct TraceRecord {
  TimePoint when;
  TraceCategory category{TraceCategory::kKernel};
  TraceNodeId node_id{0};
  std::string message;  ///< human-readable payload

  /// Emitting node name, empty for global events.
  [[nodiscard]] const std::string& node() const;

  // Set by Tracer::emit; points into the Tracer's intern table.
  const std::string* node_name{nullptr};
};

/// Destination of trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceRecord& record) = 0;
};

/// Retains records in memory; used by tests and the timeline renderers.
class MemorySink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override { records_.push_back(record); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Writes "t=... [cat] node: message" lines to stdout.
class StdoutSink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override;
};

/// Category-filtered fan-out of trace records to registered sinks.
class Tracer {
 public:
  Tracer();

  /// Registers a sink and enables the categories it wants.
  void attach(std::shared_ptr<TraceSink> sink,
              std::initializer_list<TraceCategory> categories);

  /// Enables/disables a category globally.
  void set_enabled(TraceCategory category, bool enabled) {
    enabled_[static_cast<std::size_t>(category)] = enabled;
  }

  [[nodiscard]] bool enabled(TraceCategory category) const {
    return enabled_[static_cast<std::size_t>(category)];
  }

  /// Interns `name`, returning a stable handle; the same name always maps
  /// to the same id.  Components intern their node name once at
  /// construction and pass the handle to emit().
  TraceNodeId intern(std::string_view name);

  /// The name behind an interned handle.
  [[nodiscard]] const std::string& node_name(TraceNodeId id) const {
    return names_[id];
  }

  /// Emits a record to all sinks if the category is enabled.  The interned
  /// overload is the hot path: no allocation for the node field.
  void emit(TimePoint when, TraceCategory category, TraceNodeId node,
            std::string message);

  /// Convenience overload for call sites without a pre-interned handle
  /// (tests, one-off emissions); interns on the fly.
  void emit(TimePoint when, TraceCategory category, std::string_view node,
            std::string message);

 private:
  std::array<bool, static_cast<std::size_t>(TraceCategory::kCount)> enabled_{};
  std::vector<std::shared_ptr<TraceSink>> sinks_;
  // Interned names.  std::deque keeps element addresses stable, so the
  // string_view keys of index_ and the node_name pointers handed to records
  // survive growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, TraceNodeId> index_;
};

}  // namespace bansim::sim
