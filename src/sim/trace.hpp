// Structured event tracing.
//
// Models emit timestamped records into a Tracer; sinks decide what happens
// to them (discarded, printed, retained in memory for tests and for the
// TDMA-timeline figures).  Tracing is designed to be cheap when nobody
// listens: a category check is one array load.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

/// Trace categories, one bit of filtering granularity per subsystem.
enum class TraceCategory : std::uint8_t {
  kKernel = 0,   ///< event-queue / simulator internals
  kOs,           ///< task scheduler, timers, power manager
  kMcu,          ///< microcontroller state transitions
  kRadio,        ///< radio state machine, FIFO, CRC
  kChannel,      ///< air frames, collisions
  kMac,          ///< TDMA slots, beacons, joins
  kApp,          ///< application-level events
  kEnergy,       ///< energy meter transitions
  kCount
};

[[nodiscard]] const char* to_string(TraceCategory c);

/// One trace record.
struct TraceRecord {
  TimePoint when;
  TraceCategory category{TraceCategory::kKernel};
  std::string node;     ///< emitting node id, empty for global events
  std::string message;  ///< human-readable payload
};

/// Destination of trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceRecord& record) = 0;
};

/// Retains records in memory; used by tests and the timeline renderers.
class MemorySink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override { records_.push_back(record); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Writes "t=... [cat] node: message" lines to stdout.
class StdoutSink final : public TraceSink {
 public:
  void consume(const TraceRecord& record) override;
};

/// Category-filtered fan-out of trace records to registered sinks.
class Tracer {
 public:
  Tracer() { enabled_.fill(false); }

  /// Registers a sink and enables the categories it wants.
  void attach(std::shared_ptr<TraceSink> sink,
              std::initializer_list<TraceCategory> categories);

  /// Enables/disables a category globally.
  void set_enabled(TraceCategory category, bool enabled) {
    enabled_[static_cast<std::size_t>(category)] = enabled;
  }

  [[nodiscard]] bool enabled(TraceCategory category) const {
    return enabled_[static_cast<std::size_t>(category)];
  }

  /// Emits a record to all sinks if the category is enabled.
  void emit(TimePoint when, TraceCategory category, std::string node,
            std::string message);

 private:
  std::array<bool, static_cast<std::size_t>(TraceCategory::kCount)> enabled_{};
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

}  // namespace bansim::sim
