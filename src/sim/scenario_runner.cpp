#include "sim/scenario_runner.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

namespace bansim::sim {

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

unsigned consume_jobs_flag(int& argc, char** argv, unsigned fallback) {
  unsigned jobs = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 < argc) value = argv[++i];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else {
      argv[out++] = argv[i];
      continue;
    }
    char* end = nullptr;
    const unsigned long parsed = value ? std::strtoul(value, &end, 10) : 1;
    jobs = (value && end != value && *end == '\0')
               ? static_cast<unsigned>(parsed)
               : 1;
  }
  argv[argc = out] = nullptr;
  return jobs;
}

}  // namespace bansim::sim
