// Pending-event set of the discrete-event kernel.
//
// Events are closures scheduled for an absolute TimePoint.  Ties are broken
// by insertion order (FIFO among same-time events), which the TinyOS-style
// layers above rely on for deterministic task/interrupt interleaving.
// Cancellation is supported through EventHandle without removing entries
// from the heap (lazy deletion).
//
// The hot path is allocation-free in steady state.  Closures are
// sim::InlineCallback values (fixed inline capture buffer, no heap), stored
// in a pooled slot arena; the binary heap itself orders only trivially
// copyable 24-byte keys {when, seq, slot}, so every sift during push/pop
// moves three words instead of dragging a closure through each swap.
// Scheduling claims a slot from a free list and stamps it with the event's
// globally unique sequence number; a handle (or a stale heap key) refers to
// the event only while the slot's stamp still matches, so recycled slots
// never alias old handles.  Firing or cancelling releases the slot (and
// destroys the closure) eagerly, while the heap key is pruned lazily.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace bansim::sim {

using EventAction = InlineCallback;

class EventQueue;

/// Identifies a scheduled event so it can be cancelled.  Handles are cheap
/// to copy; a default-constructed handle refers to nothing.  A handle must
/// not outlive the EventQueue that issued it (it holds a non-owning pointer
/// back to the queue), but it may freely outlive the event itself: once the
/// event fires, is cancelled, or the queue is cleared, the handle simply
/// reports !pending().
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending() const;

  /// Cancels the event if still pending.  Safe to call repeatedly.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t seq)
      : queue_{queue}, slot_{slot}, seq_{seq} {}

  EventQueue* queue_{nullptr};
  std::uint32_t slot_{0};
  std::uint64_t seq_{0};
};

/// Min-heap of (time, sequence)-ordered events with lazy cancellation.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to run at absolute time `when`.  Defined inline
  /// below: schedule/pop run once per simulated event, and keeping them
  /// visible to callers is worth measurable wall-clock on kernel-bound
  /// sweeps.
  EventHandle schedule(TimePoint when, EventAction action);

  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<TimePoint, EventAction> pop();

  /// Number of scheduled events not yet fired or cancelled.  Exact:
  /// cancellation releases its slot eagerly even though the heap entry is
  /// pruned lazily.
  [[nodiscard]] std::size_t size() const {
    prune();
    return live_;
  }

  /// Total events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

  /// Capacity of the liveness arena (diagnostics: peak concurrent events).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Pre-sizes the slot arena and heap for `events` concurrent events, so
  /// construction-time warm-up (network building, boot staggering) doesn't
  /// grow them incrementally.  Never shrinks.
  void reserve(std::size_t events);

  /// Drops every pending event.  Outstanding handles become !pending().
  /// The slot arena, free list and heap keep their capacity (a cleared
  /// queue is "warm": the next run schedules without allocating), and seq_
  /// keeps counting — rebasing it would let a handle from a previous run
  /// alias an event of the next run that landed in the same slot.
  void clear();

  /// Test seam for the seq wraparound path: forces the next stamp so a
  /// test can park seq_ near 2^64 and drive schedule/pop across the wrap
  /// without actually scheduling 2^64 events.  Precondition: the queue is
  /// empty (live entries stamped before the jump would order incorrectly).
  void set_next_seq_for_test(std::uint64_t seq) {
    assert(live_ == 0 && "seq jump with live events would corrupt ordering");
    seq_ = seq;
  }

 private:
  friend class EventHandle;

  struct Slot {
    std::uint64_t seq{0};  ///< stamp of the current/last occupant
    EventAction action;
    bool alive{false};
  };

  /// What the binary heap orders: a trivially copyable key.  `seq` both
  /// breaks same-time ties FIFO and doubles as the slot-liveness stamp.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<HeapEntry>,
                "heap sifts must stay trivial copies");

  /// std::push_heap/pop_heap comparator: max-heap on "later", so the
  /// earliest (when, seq) is at the front.  The tie-break compares sequence
  /// numbers with serial-number arithmetic (RFC 1982 style): seq_ is never
  /// rebased by clear(), so a long-lived queue that is reset between runs
  /// for years of campaigns may eventually wrap, and pending events then
  /// straddle the wrap point.  As long as fewer than 2^63 events are live
  /// at once — guaranteed, seq is also the liveness stamp — the signed
  /// difference still orders FIFO across the wrap.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return static_cast<std::int64_t>(a.seq - b.seq) > 0;
    }
  };

  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint64_t seq) const {
    return slot < slots_.size() && slots_[slot].seq == seq &&
           slots_[slot].alive;
  }

  /// Marks the slot dead, destroys its closure, and recycles it.  The next
  /// occupant stamps a fresh (strictly larger) seq, so stale heap entries
  /// and handles both see a mismatch.
  void release_slot(std::uint32_t slot) {
    slots_[slot].alive = false;
    slots_[slot].action.reset();
    free_slots_.push_back(slot);
  }

  void cancel_slot(std::uint32_t slot, std::uint64_t seq) {
    if (!slot_pending(slot, seq)) return;
    release_slot(slot);
    --live_;
  }

  /// Pops dead entries off the top so front() is live.
  void prune() const {
    // Entries whose slot stamp moved on were cancelled (their slot was
    // released eagerly, so live_ is already adjusted); just drop them.
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.seq == top.seq && s.alive) break;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_{0};
  std::uint64_t seq_{0};
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(slot_, seq_);
}

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, seq_);
}

inline EventHandle EventQueue::schedule(TimePoint when, EventAction action) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.seq = seq_;
  s.alive = true;
  s.action = std::move(action);
  heap_.push_back(HeapEntry{when, seq_, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventHandle{this, slot, seq_++};
}

inline bool EventQueue::empty() const {
  prune();
  return heap_.empty();
}

inline TimePoint EventQueue::next_time() const {
  prune();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.front().when;
}

inline std::pair<TimePoint, EventAction> EventQueue::pop() {
  prune();
  assert(!heap_.empty() && "pop() on empty queue");
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  // The closure lives in the slot arena, not the heap entry: move it out
  // before recycling the slot.
  EventAction action = std::move(slots_[top.slot].action);
  release_slot(top.slot);
  --live_;
  return {top.when, std::move(action)};
}

}  // namespace bansim::sim
