// Pending-event set of the discrete-event kernel.
//
// Events are closures scheduled for an absolute TimePoint.  Ties are broken
// by insertion order (FIFO among same-time events), which the TinyOS-style
// layers above rely on for deterministic task/interrupt interleaving.
// Cancellation is supported through EventHandle without removing entries
// from the heap (lazy deletion).
//
// Liveness is tracked in a pooled slot arena instead of a per-event
// shared_ptr<bool>: scheduling an event claims a {slot, generation} pair
// from a free list, and a handle refers to the event only while the slot's
// generation still matches.  Firing or cancelling releases the slot and
// bumps its generation, so recycled slots never alias old handles and the
// hot schedule/pop path performs no heap allocation for bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

using EventAction = std::function<void()>;

class EventQueue;

/// Identifies a scheduled event so it can be cancelled.  Handles are cheap
/// to copy; a default-constructed handle refers to nothing.  A handle must
/// not outlive the EventQueue that issued it (it holds a non-owning pointer
/// back to the queue), but it may freely outlive the event itself: once the
/// event fires, is cancelled, or the queue is cleared, the handle simply
/// reports !pending().
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending() const;

  /// Cancels the event if still pending.  Safe to call repeatedly.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_{queue}, slot_{slot}, generation_{generation} {}

  EventQueue* queue_{nullptr};
  std::uint32_t slot_{0};
  std::uint64_t generation_{0};
};

/// Min-heap of (time, sequence)-ordered events with lazy cancellation.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to run at absolute time `when`.
  EventHandle schedule(TimePoint when, EventAction action);

  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<TimePoint, EventAction> pop();

  /// Number of scheduled events not yet fired or cancelled.  Exact:
  /// cancellation releases its slot eagerly even though the heap entry is
  /// pruned lazily.
  [[nodiscard]] std::size_t size() const {
    prune();
    return live_;
  }

  /// Total events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

  /// Capacity of the liveness arena (diagnostics: peak concurrent events).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Drops every pending event.  Outstanding handles become !pending().
  void clear();

 private:
  friend class EventHandle;

  struct Slot {
    std::uint64_t generation{0};
    bool alive{false};
  };

  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventAction action;
    std::uint32_t slot;
    std::uint64_t generation;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_pending(std::uint32_t slot,
                                  std::uint64_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].alive;
  }

  /// Marks the slot dead and recycles it under a new generation, so stale
  /// heap entries and handles both see a mismatch.
  void release_slot(std::uint32_t slot) {
    slots_[slot].alive = false;
    ++slots_[slot].generation;
    free_slots_.push_back(slot);
  }

  void cancel_slot(std::uint32_t slot, std::uint64_t generation) {
    if (!slot_pending(slot, generation)) return;
    release_slot(slot);
    --live_;
  }

  /// Pops dead entries off the top so front() is live.
  void prune() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_{0};
  std::uint64_t seq_{0};
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(slot_, generation_);
}

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, generation_);
}

}  // namespace bansim::sim
