// Pending-event set of the discrete-event kernel.
//
// Events are closures scheduled for an absolute TimePoint.  Ties are broken
// by insertion order (FIFO among same-time events), which the TinyOS-style
// layers above rely on for deterministic task/interrupt interleaving.
// Cancellation is supported through EventHandle without removing entries
// from the heap (lazy deletion).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

using EventAction = std::function<void()>;

/// Identifies a scheduled event so it can be cancelled.  Handles are cheap
/// to copy; a default-constructed handle refers to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not yet fired or cancelled.
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

  /// Cancels the event if still pending.  Safe to call repeatedly.
  void cancel() {
    if (alive_) *alive_ = false;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_{std::move(alive)} {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of (time, sequence)-ordered events with lazy cancellation.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to run at absolute time `when`.
  EventHandle schedule(TimePoint when, EventAction action);

  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<TimePoint, EventAction> pop();

  /// Number of scheduled events not yet fired.  Cancelled events are counted
  /// until their entry reaches the top of the heap and is pruned, so this is
  /// an upper bound on the live count (exact when nothing was cancelled).
  [[nodiscard]] std::size_t size() const {
    prune();
    return live_;
  }

  /// Total events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

  /// Drops every pending event.
  void clear();

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventAction action;
    std::shared_ptr<bool> alive;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled entries off the top so front() is live.
  void prune() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::size_t live_{0};
  std::uint64_t seq_{0};
};

}  // namespace bansim::sim
