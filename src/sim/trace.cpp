#include "sim/trace.hpp"

#include <cmath>
#include <cstdio>

namespace bansim::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kOs: return "os";
    case TraceCategory::kMcu: return "mcu";
    case TraceCategory::kRadio: return "radio";
    case TraceCategory::kChannel: return "channel";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kApp: return "app";
    case TraceCategory::kEnergy: return "energy";
    case TraceCategory::kCount: break;
  }
  return "?";
}

TraceMessage& TraceMessage::operator<<(double value) {
  char tmp[32];
  const int n = std::snprintf(tmp, sizeof tmp, "%g", value);
  if (n > 0) *this << std::string_view{tmp, static_cast<std::size_t>(n)};
  return *this;
}

namespace {

/// Mirrors time.cpp's render_ns unit choice, but into a caller buffer.
void render_ns_into(TraceMessage& out, std::int64_t ns) {
  const double a = std::abs(static_cast<double>(ns));
  const char* unit = nullptr;
  double scaled = 0.0;
  if (a >= 1e9) {
    unit = "s";
    scaled = static_cast<double>(ns) * 1e-9;
  } else if (a >= 1e6) {
    unit = "ms";
    scaled = static_cast<double>(ns) * 1e-6;
  } else if (a >= 1e3) {
    unit = "us";
    scaled = static_cast<double>(ns) * 1e-3;
  }
  char tmp[48];
  int n;
  if (unit != nullptr) {
    n = std::snprintf(tmp, sizeof tmp, "%.3f %s", scaled, unit);
  } else {
    n = std::snprintf(tmp, sizeof tmp, "%lld ns", static_cast<long long>(ns));
  }
  if (n > 0) out << std::string_view{tmp, static_cast<std::size_t>(n)};
}

}  // namespace

TraceMessage& TraceMessage::operator<<(Duration d) {
  render_ns_into(*this, d.ticks());
  return *this;
}

TraceMessage& TraceMessage::operator<<(TimePoint t) {
  render_ns_into(*this, t.ticks());
  return *this;
}

const std::string& TraceRecord::node() const {
  static const std::string empty;
  return node_name != nullptr ? *node_name : empty;
}

void StdoutSink::consume(const TraceRecord& record) {
  std::printf("%12.6f ms [%-7s] %-8s %s\n", record.when.to_milliseconds(),
              to_string(record.category), record.node().c_str(),
              record.message.c_str());
}

Tracer::Tracer() {
  enabled_.fill(false);
  intern("");  // id 0: the anonymous/global node
}

void Tracer::attach(std::shared_ptr<TraceSink> sink,
                    std::initializer_list<TraceCategory> categories) {
  sinks_.push_back(std::move(sink));
  for (TraceCategory c : categories) set_enabled(c, true);
}

TraceNodeId Tracer::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<TraceNodeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view{names_.back()}, id);
  return id;
}

void Tracer::dispatch(TimePoint when, TraceCategory category, TraceNodeId node,
                      std::string_view message) {
  TraceRecord record{when, category, node, std::string{message},
                     &names_[node]};
  for (auto& sink : sinks_) sink->consume(record);
}

}  // namespace bansim::sim
