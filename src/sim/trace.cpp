#include "sim/trace.hpp"

#include <cstdio>

namespace bansim::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kOs: return "os";
    case TraceCategory::kMcu: return "mcu";
    case TraceCategory::kRadio: return "radio";
    case TraceCategory::kChannel: return "channel";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kApp: return "app";
    case TraceCategory::kEnergy: return "energy";
    case TraceCategory::kCount: break;
  }
  return "?";
}

void StdoutSink::consume(const TraceRecord& record) {
  std::printf("%12.6f ms [%-7s] %-8s %s\n", record.when.to_milliseconds(),
              to_string(record.category), record.node.c_str(),
              record.message.c_str());
}

void Tracer::attach(std::shared_ptr<TraceSink> sink,
                    std::initializer_list<TraceCategory> categories) {
  sinks_.push_back(std::move(sink));
  for (TraceCategory c : categories) set_enabled(c, true);
}

void Tracer::emit(TimePoint when, TraceCategory category, std::string node,
                  std::string message) {
  if (!enabled(category)) return;
  TraceRecord record{when, category, std::move(node), std::move(message)};
  for (auto& sink : sinks_) sink->consume(record);
}

}  // namespace bansim::sim
