#include "sim/trace.hpp"

#include <cstdio>

namespace bansim::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kOs: return "os";
    case TraceCategory::kMcu: return "mcu";
    case TraceCategory::kRadio: return "radio";
    case TraceCategory::kChannel: return "channel";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kApp: return "app";
    case TraceCategory::kEnergy: return "energy";
    case TraceCategory::kCount: break;
  }
  return "?";
}

const std::string& TraceRecord::node() const {
  static const std::string empty;
  return node_name != nullptr ? *node_name : empty;
}

void StdoutSink::consume(const TraceRecord& record) {
  std::printf("%12.6f ms [%-7s] %-8s %s\n", record.when.to_milliseconds(),
              to_string(record.category), record.node().c_str(),
              record.message.c_str());
}

Tracer::Tracer() {
  enabled_.fill(false);
  intern("");  // id 0: the anonymous/global node
}

void Tracer::attach(std::shared_ptr<TraceSink> sink,
                    std::initializer_list<TraceCategory> categories) {
  sinks_.push_back(std::move(sink));
  for (TraceCategory c : categories) set_enabled(c, true);
}

TraceNodeId Tracer::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<TraceNodeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view{names_.back()}, id);
  return id;
}

void Tracer::emit(TimePoint when, TraceCategory category, TraceNodeId node,
                  std::string message) {
  if (!enabled(category)) return;
  TraceRecord record{when, category, node, std::move(message),
                     &names_[node]};
  for (auto& sink : sinks_) sink->consume(record);
}

void Tracer::emit(TimePoint when, TraceCategory category,
                  std::string_view node, std::string message) {
  if (!enabled(category)) return;
  emit(when, category, intern(node), std::move(message));
}

}  // namespace bansim::sim
