// Lightweight statistics primitives used across the models and the
// experiment harness: counters, running scalar summaries, fixed-bin
// histograms, and time-weighted state-residency accumulators (the workhorse
// behind all the energy accounting).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bansim::sim {

/// Running summary of a scalar sample stream: n, mean, min, max, variance
/// (Welford's algorithm, numerically stable).
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_low(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Approximate quantile from bin midpoints; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (for reports).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

/// Accumulates how long an integer-labelled state machine spent in each
/// state.  The caller reports transitions; residency in the current state is
/// counted up to the query time.  This is the primitive both fidelity levels
/// use to integrate I*V*t energy.
class StateResidency {
 public:
  explicit StateResidency(std::size_t num_states, int initial_state = 0,
                          TimePoint start = TimePoint::zero());

  /// Records a transition at time `when` (must be >= the previous event).
  void transition(int new_state, TimePoint when);

  /// Flushes the in-progress stretch up to `when` without entering a new
  /// state: residency is accumulated, the entry count is untouched.
  /// Idempotent — closing twice at the same instant (the teardown pattern
  /// a fuzzer drives: every layer flushes "at sim end") adds zero.
  void close(TimePoint when);

  /// Run-reset: identical to constructing StateResidency{num_states,
  /// initial_state, start} but in place, reusing the accumulator storage.
  void reset(int initial_state = 0, TimePoint start = TimePoint::zero());

  [[nodiscard]] int current_state() const { return state_; }

  /// Total time spent in `state`, counting the in-progress stretch up to `now`.
  [[nodiscard]] Duration time_in(int state, TimePoint now) const;

  /// Number of entries into `state`.
  [[nodiscard]] std::uint64_t entries(int state) const {
    return entries_[static_cast<std::size_t>(state)];
  }

  [[nodiscard]] std::size_t num_states() const { return acc_.size(); }

 private:
  std::vector<Duration> acc_;
  std::vector<std::uint64_t> entries_;
  int state_;
  TimePoint since_;
};

/// Named monotonically-increasing counter set.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::uint64_t>> items_;
};

}  // namespace bansim::sim
