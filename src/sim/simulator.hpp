// Discrete-event simulator core.
//
// A Simulator owns the clock and the pending-event set, and advances time by
// executing the earliest event.  Every model in the stack (radio state
// machines, TinyOS task scheduler, TDMA slot timers, ECG sample sources)
// drives itself by scheduling closures here, mirroring how TOSSIM advances a
// network of TinyOS nodes event by event.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace bansim::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` to run after `delay` from now.  Negative delays are
  /// clamped to zero (runs after already-pending same-time events).
  EventHandle schedule_in(Duration delay, EventAction action) {
    if (delay.is_negative()) delay = Duration::zero();
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `when` (clamped to now()).
  EventHandle schedule_at(TimePoint when, EventAction action) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::move(action));
  }

  /// Runs until the event set drains or `until` is reached, whichever comes
  /// first.  The clock finishes exactly at `until` if the horizon was hit.
  void run_until(TimePoint until);

  /// Runs until the event set drains completely.
  void run();

  /// Executes a single event if one is pending; returns whether it did.
  bool step();

  /// Requests the run loop to return after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  /// Pre-sizes the pending-event set for `events` concurrent events (see
  /// EventQueue::reserve); called by network builders before cell warm-up.
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  /// Capacity of the pending-event arena (diagnostics; lets tests assert
  /// that reserve_events() actually pre-sized the kernel).
  [[nodiscard]] std::size_t event_capacity() const {
    return queue_.slot_capacity();
  }

  /// Discards all pending events and resets the clock to zero.
  void reset();

 private:
  EventQueue queue_;
  TimePoint now_{TimePoint::zero()};
  std::uint64_t executed_{0};
  bool stop_requested_{false};
};

}  // namespace bansim::sim
