// Pure-observer hook points for the runtime checking layer.
//
// A CheckHooks implementation (normally check::InvariantMonitor) attaches to
// a SimContext and receives low-level notifications from the channel, the
// radio and MCU state machines, and every watched energy meter.  The
// contract that makes the hooks safe to compile in unconditionally:
//
//  * emission sites cost one branch on a null pointer when nothing is
//    attached (the default);
//  * an implementation must be a PURE OBSERVER: it may not mutate model
//    state, schedule model-visible work, or draw from any model RNG stream.
//    Energies with hooks attached are bit-identical to energies without —
//    the monitor-on/off differential oracle in check::ScenarioFuzzer
//    enforces this.
//
// The interface lives in the sim layer and speaks only POD values plus
// opaque `const void*` component tags, so phy/hw/mac/energy can emit
// without depending on the checking layer; the implementation maps tags
// back to components it registered itself.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace bansim::sim {

class CheckHooks {
 public:
  virtual ~CheckHooks() = default;

  // --- Channel -------------------------------------------------------------

  /// A frame entered the medium.  `bytes` is the serialized Packet image
  /// (valid only for the duration of the call); the air interval is
  /// [air_start, air_start + air_time).
  virtual void on_frame_transmit(const void* /*channel*/,
                                 std::uint64_t /*frame_id*/,
                                 std::uint32_t /*tx_id*/,
                                 const std::uint8_t* /*bytes*/,
                                 std::size_t /*num_bytes*/,
                                 TimePoint /*air_start*/,
                                 Duration /*air_time*/) {}

  /// The channel marked two in-flight frames as mutually corrupted.
  virtual void on_collision(const void* /*channel*/, std::uint64_t /*frame_a*/,
                            std::uint64_t /*frame_b*/) {}

  /// A frame finished its air time and left the in-flight set (emitted once
  /// per frame, before the per-receiver deliveries).
  virtual void on_frame_retired(const void* /*channel*/,
                                std::uint64_t /*frame_id*/,
                                bool /*corrupted*/) {}

  /// Frame-end was delivered to one connected receiver; `corrupted`
  /// includes both collision corruption and the bit-error model's draw.
  virtual void on_frame_delivered(const void* /*channel*/,
                                  std::uint64_t /*frame_id*/,
                                  std::uint32_t /*rx_id*/,
                                  bool /*corrupted*/) {}

  // --- Device state machines ----------------------------------------------

  /// A radio changed power/functional state (hw::RadioState values).
  virtual void on_radio_state(const void* /*radio*/, int /*from*/, int /*to*/,
                              TimePoint /*when*/) {}

  /// An MCU changed power mode (hw::McuMode values).
  virtual void on_mcu_mode(const void* /*mcu*/, int /*from*/, int /*to*/,
                           TimePoint /*when*/) {}

  // --- Energy meters -------------------------------------------------------

  /// A watched EnergyMeter recorded a state transition.
  virtual void on_meter_transition(const void* /*meter*/, int /*state*/,
                                   TimePoint /*when*/) {}

  /// A watched EnergyMeter absorbed a fixed-cost transient.
  virtual void on_meter_transient(const void* /*meter*/, int /*state*/,
                                  double /*joules*/) {}
};

}  // namespace bansim::sim
