// Parallel scenario executor for parameter sweeps.
//
// The paper's evaluation (Tables 1-4, Fig. 4) and every bench/sweep target
// re-run essentially the same simulation dozens of times with different
// parameters.  Each configuration owns its entire stack — Simulator, event
// queue, node models, RNG streams — so scenarios are embarrassingly
// parallel.  ScenarioRunner fans N scenario factories out over a pool of
// worker threads and collects results deterministically ordered by scenario
// index.  Because no state is shared between scenarios, the results are
// bit-identical to running the same factories serially; only wall-clock
// time changes.
//
// Usage:
//   ScenarioRunner runner{jobs};            // 0 -> hardware_concurrency()
//   std::vector<std::function<R()>> work = ...;
//   std::vector<R> results = runner.run(work);   // results[i] from work[i]
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace bansim::sim {

/// Resolves a requested worker count: 0 means "use every hardware thread"
/// (at least 1); anything else is taken literally.
[[nodiscard]] unsigned resolve_jobs(unsigned requested);

/// Strips a `--jobs N` / `--jobs=N` flag out of argv (so downstream parsers
/// such as benchmark::Initialize never see it) and returns the requested
/// count, or `fallback` when the flag is absent.  Malformed values fall back
/// to serial (1).
[[nodiscard]] unsigned consume_jobs_flag(int& argc, char** argv,
                                         unsigned fallback = 1);

/// One scenario's result plus how long that scenario took on its worker.
template <typename Result>
struct TimedResult {
  Result value{};
  double seconds{0};
};

/// Accounting for the most recent run()/run_timed()/run_with_context()
/// call.  `runs_reused` counts executions that ran on a worker's warmed
/// per-worker context (always 0 for the context-free entry points) — the
/// campaign-throughput number reset-per-run exists to maximise.
struct RunnerSummary {
  double wall_seconds{0};
  std::size_t scenarios{0};
  std::size_t runs_reused{0};
  unsigned workers{1};
};

class ScenarioRunner {
 public:
  /// `jobs` == 0 uses hardware_concurrency(); 1 runs inline (no threads).
  explicit ScenarioRunner(unsigned jobs = 0) : jobs_{resolve_jobs(jobs)} {}

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Wall-clock seconds of the most recent run()/run_timed() call.
  [[nodiscard]] double last_wall_seconds() const { return wall_seconds_; }

  /// Accounting of the most recent run (wall clock, scenario count, how
  /// many executions reused a per-worker context).
  [[nodiscard]] const RunnerSummary& summary() const { return summary_; }

  /// Runs every scenario and returns results ordered by scenario index.
  /// If any scenario throws, the first exception (by scenario index) is
  /// rethrown after all workers finish.
  template <typename Result>
  std::vector<Result> run(const std::vector<std::function<Result()>>& scenarios) {
    auto timed = run_timed(scenarios);
    std::vector<Result> results;
    results.reserve(timed.size());
    for (auto& t : timed) results.push_back(std::move(t.value));
    return results;
  }

  /// Like run(), but also reports per-scenario execution time (for
  /// event-throughput reporting in the benches).
  template <typename Result>
  std::vector<TimedResult<Result>> run_timed(
      const std::vector<std::function<Result()>>& scenarios) {
    using Clock = std::chrono::steady_clock;
    const auto wall_start = Clock::now();

    std::vector<std::optional<TimedResult<Result>>> slots(scenarios.size());
    std::vector<std::exception_ptr> errors(scenarios.size());

    auto run_one = [&](std::size_t i) {
      const auto start = Clock::now();
      try {
        TimedResult<Result> timed;
        timed.value = scenarios[i]();
        timed.seconds = std::chrono::duration<double>(Clock::now() - start).count();
        slots[i] = std::move(timed);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    };

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, scenarios.size()));
    if (workers <= 1) {
      for (std::size_t i = 0; i < scenarios.size(); ++i) run_one(i);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (std::size_t i = next.fetch_add(1); i < scenarios.size();
               i = next.fetch_add(1)) {
            run_one(i);
          }
        });
      }
      for (auto& worker : pool) worker.join();
    }

    wall_seconds_ = std::chrono::duration<double>(Clock::now() - wall_start).count();
    summary_ = RunnerSummary{wall_seconds_, scenarios.size(), 0, workers};

    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    std::vector<TimedResult<Result>> results;
    results.reserve(slots.size());
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Campaign entry point: runs `count` scenarios where each worker owns
  /// ONE default-constructed Context for its whole lifetime and every
  /// scenario that worker executes receives it — the seam reset-per-run
  /// campaigns use to keep a warmed BuiltCell (and pre-sized report
  /// buffers) alive across runs instead of rebuilding per scenario.
  /// Results are index-ordered and bit-identical to a serial run for any
  /// worker count, because every run owns its whole simulation state.
  /// Every execution after a worker's first counts into
  /// summary().runs_reused.
  template <typename Result, typename Context>
  std::vector<Result> run_with_context(
      std::size_t count,
      const std::function<Result(Context&, std::size_t)>& scenario) {
    using Clock = std::chrono::steady_clock;
    const auto wall_start = Clock::now();

    // Pre-sized result buffer: one slot per scenario, written in place by
    // whichever worker claims the index — no per-run report allocation.
    std::vector<std::optional<Result>> slots(count);
    std::vector<std::exception_ptr> errors(count);

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
    std::atomic<std::size_t> reused{0};

    auto drain = [&](auto claim) {
      Context context{};
      std::size_t executed = 0;
      for (std::size_t i = claim(); i < count; i = claim()) {
        try {
          slots[i] = scenario(context, i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        ++executed;
      }
      if (executed > 1) {
        reused.fetch_add(executed - 1, std::memory_order_relaxed);
      }
    };

    if (workers <= 1) {
      std::size_t serial_next = 0;
      drain([&] { return serial_next++; });
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] { drain([&] { return next.fetch_add(1); }); });
      }
      for (auto& worker : pool) worker.join();
    }

    wall_seconds_ =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    summary_ = RunnerSummary{wall_seconds_, count,
                             reused.load(std::memory_order_relaxed),
                             std::max(workers, 1u)};

    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    std::vector<Result> results;
    results.reserve(count);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

 private:
  unsigned jobs_;
  double wall_seconds_{0};
  RunnerSummary summary_{};
};

}  // namespace bansim::sim
