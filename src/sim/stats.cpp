#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bansim::sim {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)},
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // guards fp edge cases
    ++counts_[i];
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = underflow_;
  if (seen > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bin_low(i) + width_ * 0.5;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.4g, %10.4g) %8llu |", bin_low(i),
                  bin_low(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

StateResidency::StateResidency(std::size_t num_states, int initial_state,
                               TimePoint start)
    : acc_(num_states, Duration::zero()), entries_(num_states, 0),
      state_{initial_state}, since_{start} {
  assert(static_cast<std::size_t>(initial_state) < num_states);
  ++entries_[static_cast<std::size_t>(initial_state)];
}

void StateResidency::transition(int new_state, TimePoint when) {
  assert(when >= since_ && "transitions must be time-ordered");
  assert(static_cast<std::size_t>(new_state) < acc_.size());
  acc_[static_cast<std::size_t>(state_)] += when - since_;
  state_ = new_state;
  since_ = when;
  ++entries_[static_cast<std::size_t>(new_state)];
}

void StateResidency::reset(int initial_state, TimePoint start) {
  assert(static_cast<std::size_t>(initial_state) < acc_.size());
  std::fill(acc_.begin(), acc_.end(), Duration::zero());
  std::fill(entries_.begin(), entries_.end(), std::uint64_t{0});
  state_ = initial_state;
  since_ = start;
  ++entries_[static_cast<std::size_t>(initial_state)];
}

void StateResidency::close(TimePoint when) {
  assert(when >= since_ && "close must not move time backwards");
  acc_[static_cast<std::size_t>(state_)] += when - since_;
  since_ = when;
}

Duration StateResidency::time_in(int state, TimePoint now) const {
  Duration t = acc_[static_cast<std::size_t>(state)];
  if (state == state_ && now > since_) t += now - since_;
  return t;
}

void Counters::add(const std::string& name, std::uint64_t delta) {
  for (auto& [key, value] : items_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  items_.emplace_back(name, delta);
}

std::uint64_t Counters::get(const std::string& name) const {
  for (const auto& [key, value] : items_) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace bansim::sim
