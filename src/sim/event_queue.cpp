#include "sim/event_queue.hpp"

namespace bansim::sim {

// schedule/pop/prune are defined inline in the header (hot path); only the
// cold setup/teardown members live here.

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  free_slots_.reserve(events);
  if (slots_.size() < events) {
    // Grow the arena eagerly and free-list the new slots (in reverse, so
    // lower-numbered slots are claimed first, matching on-demand growth).
    slots_.reserve(events);
    const auto first = static_cast<std::uint32_t>(slots_.size());
    slots_.resize(events);
    for (auto slot = static_cast<std::uint32_t>(events); slot-- > first;) {
      free_slots_.push_back(slot);
    }
  }
}

void EventQueue::clear() {
  heap_.clear();
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].alive) release_slot(slot);
  }
  live_ = 0;
}

}  // namespace bansim::sim
