#include "sim/event_queue.hpp"

#include <cassert>

namespace bansim::sim {

EventHandle EventQueue::schedule(TimePoint when, EventAction action) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.alive = true;
  heap_.push(Entry{when, seq_++, std::move(action), slot, s.generation});
  ++live_;
  return EventHandle{this, slot, s.generation};
}

void EventQueue::prune() const {
  // Entries whose slot generation moved on were cancelled (their slot was
  // released eagerly, so live_ is already adjusted); just drop them.
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const Slot& s = slots_[top.slot];
    if (s.generation == top.generation && s.alive) break;
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  prune();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  prune();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().when;
}

std::pair<TimePoint, EventAction> EventQueue::pop() {
  prune();
  assert(!heap_.empty() && "pop() on empty queue");
  // priority_queue::top() is const&; the entry is moved out via const_cast,
  // which is safe because the element is popped immediately after and the
  // heap ordering does not depend on the moved-from members.
  Entry& top = const_cast<Entry&>(heap_.top());
  TimePoint when = top.when;
  EventAction action = std::move(top.action);
  release_slot(top.slot);
  heap_.pop();
  --live_;
  return {when, std::move(action)};
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].alive) release_slot(slot);
  }
  live_ = 0;
}

}  // namespace bansim::sim
