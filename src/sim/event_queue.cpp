#include "sim/event_queue.hpp"

#include <cassert>

namespace bansim::sim {

EventHandle EventQueue::schedule(TimePoint when, EventAction action) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{when, seq_++, std::move(action), alive});
  ++live_;
  return EventHandle{std::move(alive)};
}

void EventQueue::prune() const {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  prune();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  prune();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().when;
}

std::pair<TimePoint, EventAction> EventQueue::pop() {
  prune();
  assert(!heap_.empty() && "pop() on empty queue");
  // priority_queue::top() is const&; the entry is moved out via const_cast,
  // which is safe because the element is popped immediately after and the
  // heap ordering does not depend on the moved-from members.
  Entry& top = const_cast<Entry&>(heap_.top());
  TimePoint when = top.when;
  EventAction action = std::move(top.action);
  *top.alive = false;
  heap_.pop();
  --live_;
  return {when, std::move(action)};
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  live_ = 0;
}

}  // namespace bansim::sim
