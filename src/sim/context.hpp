// Per-run simulation context.
//
// One SimContext is one deterministic simulated world: the event kernel,
// the tracer, and the root RNG seed from which every named random stream
// derives.  Components take a SimContext& instead of threading
// (Simulator&, Tracer&) pairs through every constructor, so adding a new
// shared service never ripples through the whole stack again.
//
// Stream derivation is positionless: `stream("mac/node3")` always returns
// the same sequence for the same seed regardless of how many other streams
// were created before it, which is the property the determinism guarantee
// (DESIGN.md) rests on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::sim {

class CheckHooks;

class SimContext {
 public:
  explicit SimContext(std::uint64_t seed = 1) : seed_{seed}, root_rng_{seed} {}
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  Simulator simulator;
  Tracer tracer;

  /// The experiment seed all named streams derive from.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Run-reset: rewinds this context to the state a freshly constructed
  /// SimContext{seed} would have — clock at zero, event queue empty (slot
  /// arena kept warm), root RNG re-rooted — while the tracer keeps its
  /// interned-name table and any attached check hooks stay attached.
  /// Components that derive named streams lazily pick up the new seed on
  /// their own reset; see DESIGN.md "Run reset protocol".
  void reset(std::uint64_t seed) {
    seed_ = seed;
    root_rng_ = Rng{seed};
    simulator.reset();
    tracer.reset();
  }

  /// The root RNG: draws here are positional (order-dependent), so reserve
  /// it for code that owns the whole context; model components should use
  /// named streams instead.
  [[nodiscard]] Rng& root_rng() { return root_rng_; }

  /// Derives the independent named stream for this context's seed; the same
  /// (seed, name) pair always produces the same sequence.
  [[nodiscard]] Rng stream(std::string_view name) const {
    return Rng::stream(seed_, name);
  }

  /// Per-node stream derivation: "<domain>/<node>", e.g.
  /// node_stream("mac", "node3") == stream("mac/node3").
  [[nodiscard]] Rng node_stream(std::string_view domain,
                                std::string_view node) const {
    std::string name;
    name.reserve(domain.size() + 1 + node.size());
    name.append(domain).append("/").append(node);
    return Rng::stream(seed_, name);
  }

  /// The attached checking-layer observer, or nullptr (the default).
  /// Components re-read this slot at every emission site, so a monitor can
  /// attach at any time; see sim/check_hooks.hpp for the observer contract.
  [[nodiscard]] CheckHooks* check_hooks() const { return check_hooks_; }
  void set_check_hooks(CheckHooks* hooks) { check_hooks_ = hooks; }

 private:
  std::uint64_t seed_;
  Rng root_rng_;
  CheckHooks* check_hooks_{nullptr};
};

}  // namespace bansim::sim
