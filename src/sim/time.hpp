// Simulated-time types for the BAN simulator.
//
// All simulation time is kept as signed 64-bit nanosecond counts wrapped in
// the strong types Duration and TimePoint so that durations and absolute
// instants cannot be mixed up, and so that raw integers never leak into
// module interfaces.  2^63 ns is ~292 years, far beyond any BAN scenario.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace bansim::sim {

/// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these to the raw-tick factory.
  static constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1'000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }

  /// Fractional-unit factories (round to nearest nanosecond).
  static constexpr Duration from_seconds(double s) {
    return Duration{round_ticks(s * 1e9)};
  }
  static constexpr Duration from_milliseconds(double ms) {
    return Duration{round_ticks(ms * 1e6)};
  }
  static constexpr Duration from_microseconds(double us) {
    return Duration{round_ticks(us * 1e3)};
  }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ticks() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_microseconds() const { return static_cast<double>(ns_) * 1e-3; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }
  [[nodiscard]] constexpr bool is_positive() const { return ns_ > 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration rhs) const { return Duration{ns_ + rhs.ns_}; }
  constexpr Duration operator-(Duration rhs) const { return Duration{ns_ - rhs.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration rhs) { ns_ += rhs.ns_; return *this; }
  constexpr Duration& operator-=(Duration rhs) { ns_ -= rhs.ns_; return *this; }

  /// Scale by a real factor (rounds to nearest nanosecond).
  [[nodiscard]] constexpr Duration scaled(double factor) const {
    return Duration{round_ticks(static_cast<double>(ns_) * factor)};
  }

  /// Integer division of two durations (how many rhs fit in *this).
  [[nodiscard]] constexpr std::int64_t divided_by(Duration rhs) const { return ns_ / rhs.ns_; }

  /// Remainder after dividing by rhs.
  [[nodiscard]] constexpr Duration mod(Duration rhs) const { return Duration{ns_ % rhs.ns_}; }

  /// Human-readable rendering with an auto-chosen unit, e.g. "1.500 ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}

  static constexpr std::int64_t round_ticks(double ns) {
    return static_cast<std::int64_t>(ns + (ns >= 0 ? 0.5 : -0.5));
  }

  std::int64_t ns_{0};
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::nanoseconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::microseconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::milliseconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(long double v) {
  return Duration::from_microseconds(static_cast<double>(v));
}
constexpr Duration operator""_ms(long double v) {
  return Duration::from_milliseconds(static_cast<double>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::from_seconds(static_cast<double>(v));
}
}  // namespace literals

/// An absolute instant on the simulation clock.  Time starts at zero().
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint zero() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr TimePoint from_ticks(std::int64_t ns) { return TimePoint{ns}; }

  [[nodiscard]] constexpr std::int64_t ticks() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }

  /// Duration since the simulation epoch.
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::nanoseconds(ns_); }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ticks()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ticks()}; }
  constexpr Duration operator-(TimePoint rhs) const {
    return Duration::nanoseconds(ns_ - rhs.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ticks(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

}  // namespace bansim::sim
