#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace bansim::sim {

namespace {

std::string format_with_unit(double value, const char* unit) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f %s", value, unit);
  return buf;
}

std::string render_ns(std::int64_t ns) {
  const double a = std::abs(static_cast<double>(ns));
  if (a >= 1e9) return format_with_unit(static_cast<double>(ns) * 1e-9, "s");
  if (a >= 1e6) return format_with_unit(static_cast<double>(ns) * 1e-6, "ms");
  if (a >= 1e3) return format_with_unit(static_cast<double>(ns) * 1e-3, "us");
  return std::to_string(ns) + " ns";
}

}  // namespace

std::string Duration::to_string() const { return render_ns(ns_); }

std::string TimePoint::to_string() const { return render_ns(ns_); }

}  // namespace bansim::sim
