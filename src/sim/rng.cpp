#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace bansim::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng Rng::stream(std::uint64_t seed, std::string_view name) {
  return Rng{seed ^ fnv1a64(name)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return mean + stddev * u * m;
}

bool Rng::chance(double p) { return next_double() < p; }

}  // namespace bansim::sim
