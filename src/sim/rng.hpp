// Deterministic random-number generation for reproducible experiments.
//
// Every stochastic model element (ECG beat jitter, dynamic-TDMA random
// slot-request timing, clock drift, measurement noise) draws from its own
// named stream derived from the experiment seed, so adding a new consumer
// never perturbs the draws seen by existing ones.
#pragma once

#include <cstdint>
#include <string_view>

namespace bansim::sim {

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that any 64-bit seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derives an independent stream for `name` from a base seed; same
  /// (seed, name) pair always produces the same stream.
  static Rng stream(std::uint64_t seed, std::string_view name);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive).  Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  bool have_spare_{false};
  double spare_{0.0};
};

/// 64-bit FNV-1a — used to fold stream names into seeds.
std::uint64_t fnv1a64(std::string_view s);

}  // namespace bansim::sim
