#include "sim/simulator.hpp"

namespace bansim::sim {

void Simulator::run_until(TimePoint until) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= until) {
    auto [when, action] = queue_.pop();
    now_ = when;
    ++executed_;
    action();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) {
    auto [when, action] = queue_.pop();
    now_ = when;
    ++executed_;
    action();
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, action] = queue_.pop();
  now_ = when;
  ++executed_;
  action();
  return true;
}

void Simulator::reset() {
  queue_.clear();
  now_ = TimePoint::zero();
  executed_ = 0;
  stop_requested_ = false;
}

}  // namespace bansim::sim
