// Allocation-free closure storage for the event kernel.
//
// InlineCallback replaces std::function<void()> as the kernel's EventAction.
// The captured state lives in a fixed 64-byte buffer inside the object, so
// scheduling an event never touches the heap: the closure is move-constructed
// straight into the EventQueue's slot arena.  The type is move-only (unlike
// std::function it can hold move-only captures such as unique_ptr), and the
// per-type dispatch is a single static ops-table pointer, so an empty
// callback is two words of zero and a move is a memcpy-sized relocation.
//
// Closures whose captures exceed the inline capacity do not compile — the
// converting constructor is constrained on the capture fitting, which keeps
// the "no allocation on the schedule path" guarantee honest at compile time.
// The rare genuinely-large closure opts into a heap allocation explicitly
// with InlineCallback::boxed(fn).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bansim::sim {

class InlineCallback {
 public:
  /// Inline capture capacity.  Sized for the kernel's real closures (a
  /// `this` pointer plus a handful of values or one std::function being
  /// forwarded across a layer boundary) while keeping a heap-arena slot
  /// comfortably within a cache line pair.
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when F's decayed type can live in the inline buffer.
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineBytes &&
      alignof(std::decay_t<F>) <= kInlineAlign;

  InlineCallback() noexcept = default;

  /// Implicit conversion from any void() callable whose captures fit
  /// inline, so `schedule_in(d, [this]{ ... })` reads exactly as before.
  /// Callables that are too large are rejected at compile time; use
  /// boxed() to opt into a heap allocation for them.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&> &&
             fits_inline<F>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event closures are relocated during heap maintenance and "
                  "must be nothrow-move-constructible");
    ::new (storage()) Fn(std::forward<F>(f));
    ops_ = &kOps<Fn>;
  }

  /// Explicit heap-fallback escape hatch for closures too large for the
  /// inline buffer: the callable is moved onto the heap and the inline
  /// buffer holds only the owning pointer.
  template <typename F>
  [[nodiscard]] static InlineCallback boxed(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "boxed() requires a void() callable");
    return InlineCallback{
        BoxedThunk<Fn>{std::make_unique<Fn>(std::forward<F>(f))}};
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the held callable (if any); the callback becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  /// Invokes the held callable.  Precondition: non-empty.
  void operator()() { ops_->invoke(storage()); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// nullptr means "trivially relocatable": moving is a memcpy of the
    /// inline buffer, with no per-type call.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr means trivially destructible: destruction is a no-op.
    void (*destroy)(void* self) noexcept;
  };

  /// Trivially copyable + trivially destructible captures (the common case:
  /// a `this` pointer plus a few scalars) skip the per-type relocate/destroy
  /// indirect calls entirely — that is two fewer indirect branches on every
  /// schedule/pop cycle.
  template <typename Fn>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kOps{
      [](void* self) { (*static_cast<Fn*>(self))(); },
      kTrivial<Fn> ? nullptr
                   : +[](void* dst, void* src) noexcept {
                       ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
                       static_cast<Fn*>(src)->~Fn();
                     },
      kTrivial<Fn> ? nullptr
                   : +[](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
  };

  /// Heap indirection used by boxed(); itself trivially small, so it goes
  /// through the normal inline path.
  template <typename Fn>
  struct BoxedThunk {
    std::unique_ptr<Fn> fn;
    void operator()() { (*fn)(); }
  };

  void steal(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(storage(), other.storage());
      } else {
        // Trivial capture: the whole fixed-size buffer copies in a handful
        // of vector moves, cheaper and branch-friendlier than an indirect
        // call sized to the exact capture.  The bytes past the capture are
        // indeterminate but never interpreted — std::byte has no trap
        // representations, so copying them is harmless.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(buffer_, other.buffer_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void* storage() noexcept { return static_cast<void*>(buffer_); }

  alignas(kInlineAlign) std::byte buffer_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace bansim::sim
