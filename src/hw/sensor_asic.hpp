// 25-channel ultra-low-power biopotential ASIC.
//
// The front-end conditions up to 24 EEG + 1 ECG channels and presents them
// as analog outputs the MCU samples through the ADC.  Electrically the
// paper treats it as a constant 10.5 mW @ 3.0 V load excluded from the
// validation tables; functionally it is the signal source, so the model
// couples per-channel waveform generators (the synthetic ECG) to the ADC
// input.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/params.hpp"
#include "sim/simulator.hpp"

namespace bansim::hw {

class SensorAsic {
 public:
  /// Waveform of one channel: simulated time -> electrode voltage (volts,
  /// already amplified into the ADC range by the front-end gain).
  using ChannelSignal = std::function<double(sim::TimePoint)>;

  SensorAsic(sim::Simulator& simulator, const AsicParams& params);

  void set_channel_signal(std::uint32_t channel, ChannelSignal signal);

  /// Instantaneous output of `channel` (0 V when unassigned).
  [[nodiscard]] double read_channel(std::uint32_t channel) const;

  [[nodiscard]] const AsicParams& params() const { return params_; }

  /// Energy since t=0 (constant power), joules.
  [[nodiscard]] double energy(sim::TimePoint now) const {
    return params_.power_watts * now.to_seconds();
  }

 private:
  sim::Simulator& simulator_;
  AsicParams params_;
  std::vector<ChannelSignal> signals_;
};

}  // namespace bansim::hw
