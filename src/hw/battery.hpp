// Battery and energy-scavenging models.
//
// BAN nodes "operate on very limited resources, such as batteries or
// energy scavengers" (Section 1).  The Battery integrates charge drawn by
// the node with a simple open-circuit-voltage sag and a low-rate Peukert
// correction; the Harvester replays a (possibly time-varying) scavenged
// power profile into it.  Together they turn the energy figures of the
// validation tables into deployment lifetimes (see the network_tuning
// example and lifetime utilities below).
#pragma once

#include <functional>

#include "sim/time.hpp"

namespace bansim::hw {

struct BatteryParams {
  double capacity_mah{160.0};     ///< typical body-worn patch cell
  double nominal_volts{3.0};
  double full_volts{4.2};         ///< Li-polymer open-circuit, full
  /// Usable-charge cutoff: the node's regulator drops out at this
  /// open-circuit voltage, so the cell is "depleted" here — well above the
  /// chemistry floor — even though charge remains below it.
  double empty_volts{3.0};
  /// Chemistry floor of the linear OCV sag (fully discharged cell).  Must
  /// be below empty_volts; the stretch between the two is the unusable
  /// tail of the discharge curve.
  double dead_volts{2.5};
  /// Rated discharge rate in C.  Peukert derating applies only above this
  /// rate: a cell delivers its rated capacity at (or below) the rate it
  /// was specified at, and progressively less above it.
  double rated_c{1.0};
  /// Peukert-like derating exponent: effective capacity shrinks as the
  /// average discharge rate (in C) rises past rated_c; 1.0 disables the
  /// effect.
  double peukert_exponent{1.05};
};

class Battery {
 public:
  explicit Battery(const BatteryParams& params);

  /// Removes `joules` from the store (clamped at the chemistry floor);
  /// returns the joules actually removed.
  double draw(double joules);

  /// Adds `joules` of harvested charge (clamped at full); returns the
  /// joules actually stored — the remainder overflowed the full cell.
  double charge(double joules);

  [[nodiscard]] double capacity_joules() const { return capacity_joules_; }
  [[nodiscard]] double remaining_joules() const { return remaining_joules_; }
  [[nodiscard]] double state_of_charge() const {
    return remaining_joules_ / capacity_joules_;
  }
  /// State of charge at which the OCV reaches empty_volts — the fraction
  /// of capacity that is unusable tail, not deliverable charge.
  [[nodiscard]] double cutoff_soc() const;
  [[nodiscard]] double cutoff_joules() const {
    return cutoff_soc() * capacity_joules_;
  }
  /// Deliverable charge: remaining minus the unusable tail (>= 0).
  [[nodiscard]] double usable_joules() const;
  /// True once the open-circuit voltage has sagged to empty_volts: the
  /// regulator browns out here, consistent with the fault subsystem's ESR
  /// sag model, even though charge remains in the unusable tail.
  [[nodiscard]] bool depleted() const {
    return remaining_joules_ <= cutoff_joules();
  }

  /// Open-circuit voltage at the current state of charge (linear sag from
  /// dead_volts at empty to full_volts at full).
  [[nodiscard]] double open_circuit_volts() const;

  /// Hours until depleted() at a constant `watts` net load (after
  /// harvesting).  Discharge above rated_c derates the usable charge by
  /// Peukert's law relative to the rated rate; at or below rated_c the
  /// cell simply delivers its usable charge (effective <= remaining,
  /// always).  Infinite when the net load is non-positive.
  [[nodiscard]] double hours_at(double watts) const;

  [[nodiscard]] const BatteryParams& params() const { return params_; }

 private:
  BatteryParams params_;
  double capacity_joules_;
  double remaining_joules_;
};

/// Scavenged power source: thermoelectric / solar profile feeding a battery.
class Harvester {
 public:
  /// `profile` maps simulated time to harvested watts (>= 0).
  using Profile = std::function<double(sim::TimePoint)>;

  Harvester(Profile profile, Battery& battery)
      : profile_{std::move(profile)}, battery_{battery} {}

  /// Integrates the profile over [t0, t1] (trapezoid, `steps` segments)
  /// into the battery; returns the joules actually STORED.  Charge that
  /// arrives while the cell is full is discarded by the charge clamp and
  /// accounted under total_overflow(), never in the return value — callers
  /// doing energy bookkeeping must not double-count it.
  double accumulate(sim::TimePoint t0, sim::TimePoint t1, int steps = 32);

  [[nodiscard]] double power_at(sim::TimePoint t) const { return profile_(t); }

  /// Integrated profile energy across every accumulate() call.
  [[nodiscard]] double total_income() const { return total_income_; }
  /// Portion of the income the battery actually absorbed.
  [[nodiscard]] double total_stored() const { return total_stored_; }
  /// Portion discarded at the full-charge clamp (income - stored).
  [[nodiscard]] double total_overflow() const {
    return total_income_ - total_stored_;
  }

 private:
  Profile profile_;
  Battery& battery_;
  double total_income_{0.0};
  double total_stored_{0.0};
};

/// Deployment-lifetime projection: average node power (from the validation
/// runs) against a battery and an optional constant harvest.
[[nodiscard]] double projected_lifetime_hours(const Battery& battery,
                                              double node_watts,
                                              double harvest_watts = 0.0);

}  // namespace bansim::hw
