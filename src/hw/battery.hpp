// Battery and energy-scavenging models.
//
// BAN nodes "operate on very limited resources, such as batteries or
// energy scavengers" (Section 1).  The Battery integrates charge drawn by
// the node with a simple open-circuit-voltage sag and a low-rate Peukert
// correction; the Harvester replays a (possibly time-varying) scavenged
// power profile into it.  Together they turn the energy figures of the
// validation tables into deployment lifetimes (see the network_tuning
// example and lifetime utilities below).
#pragma once

#include <functional>

#include "sim/time.hpp"

namespace bansim::hw {

struct BatteryParams {
  double capacity_mah{160.0};     ///< typical body-worn patch cell
  double nominal_volts{3.0};
  double full_volts{4.2};         ///< Li-polymer open-circuit, full
  double empty_volts{3.0};        ///< cutoff
  /// Peukert-like derating exponent: effective capacity shrinks as the
  /// average discharge rate (in C) rises; 1.0 disables the effect.
  double peukert_exponent{1.05};
};

class Battery {
 public:
  explicit Battery(const BatteryParams& params);

  /// Removes `joules` from the store (clamped at empty).
  void draw(double joules);

  /// Adds `joules` of harvested charge (clamped at full).
  void charge(double joules);

  [[nodiscard]] double capacity_joules() const { return capacity_joules_; }
  [[nodiscard]] double remaining_joules() const { return remaining_joules_; }
  [[nodiscard]] double state_of_charge() const {
    return remaining_joules_ / capacity_joules_;
  }
  [[nodiscard]] bool depleted() const { return remaining_joules_ <= 0.0; }

  /// Open-circuit voltage at the current state of charge (linear sag).
  [[nodiscard]] double open_circuit_volts() const;

  /// Hours until empty at a constant `watts` net load (after harvesting),
  /// including the Peukert derating at that rate.  Infinite when the net
  /// load is non-positive.
  [[nodiscard]] double hours_at(double watts) const;

  [[nodiscard]] const BatteryParams& params() const { return params_; }

 private:
  BatteryParams params_;
  double capacity_joules_;
  double remaining_joules_;
};

/// Scavenged power source: thermoelectric / solar profile feeding a battery.
class Harvester {
 public:
  /// `profile` maps simulated time to harvested watts (>= 0).
  using Profile = std::function<double(sim::TimePoint)>;

  Harvester(Profile profile, Battery& battery)
      : profile_{std::move(profile)}, battery_{battery} {}

  /// Integrates the profile over [t0, t1] (trapezoid, `steps` segments)
  /// into the battery; returns the harvested joules.
  double accumulate(sim::TimePoint t0, sim::TimePoint t1, int steps = 32);

  [[nodiscard]] double power_at(sim::TimePoint t) const { return profile_(t); }

 private:
  Profile profile_;
  Battery& battery_;
};

/// Deployment-lifetime projection: average node power (from the validation
/// runs) against a battery and an optional constant harvest.
[[nodiscard]] double projected_lifetime_hours(const Battery& battery,
                                              double node_watts,
                                              double harvest_watts = 0.0);

}  // namespace bansim::hw
