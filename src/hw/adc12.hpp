// On-chip 12-bit SAR ADC of the MSP430 (ADC12 block).
//
// A conversion samples an analog input and completes after the converter's
// fixed conversion time, delivering a 12-bit code.  The MCU stays active
// while a conversion runs (the drivers of this platform poll/interrupt at
// the sample rate), so the ADC contributes latency to the sampling path but
// is powered from the MCU rail and folded into its current, as the paper's
// model does.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/params.hpp"
#include "sim/simulator.hpp"

namespace bansim::hw {

class Adc12 {
 public:
  /// Maps a channel index to the instantaneous input voltage (0..vref).
  using AnalogInput = std::function<double(std::uint32_t channel)>;

  Adc12(sim::Simulator& simulator, const AdcParams& params, double vref = 2.5);

  void set_input(AnalogInput input) { input_ = std::move(input); }

  /// Starts a conversion; `done` fires after the conversion time with the
  /// 12-bit code.  One conversion at a time (matches single-channel mode).
  void convert(std::uint32_t channel, std::function<void(std::uint16_t)> done);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] const AdcParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t conversions() const { return conversions_; }

  /// Quantizes `volts` to the ADC's code range (clamping).
  [[nodiscard]] std::uint16_t quantize(double volts) const;

  /// Run-reset: idle with zero conversions; the input wiring survives.
  void reset() {
    busy_ = false;
    conversions_ = 0;
  }

 private:
  sim::Simulator& simulator_;
  AdcParams params_;
  double vref_;
  AnalogInput input_;
  bool busy_{false};
  std::uint64_t conversions_{0};
};

}  // namespace bansim::hw
