// Electrical and timing constants of the platform components.
//
// Values come from the paper's Section 3.1/4 (measured currents at 2.8 V)
// and from the public MSP430F149 / nRF2401 datasheets for the second-order
// timing the paper's estimator abstracts away (settling, wake-up, SPI
// clock-in).  Everything is a plain aggregate so experiments can perturb
// individual parameters.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace bansim::hw {

/// TI MSP430F149 microcontroller.
struct McuParams {
  double supply_volts{2.8};
  double active_current_amps{2.0e-3};   ///< measured: 2 mA active @ 2.8 V
  double lpm_current_amps{0.66e-3};     ///< measured: 0.66 mA in power-saving
  double lpm3_current_amps{2.0e-6};     ///< datasheet LPM3 (unused by the apps)
  double lpm4_current_amps{0.2e-6};     ///< datasheet LPM4 (unused by the apps)
  double cpu_hz{8.0e6};                 ///< "maximum speed" per Section 5.1
  sim::Duration wakeup_latency{sim::Duration::microseconds(6)};  ///< 6 us
  /// Extra cycles a real interrupt costs beyond the handler body
  /// (hardware entry 6 + RETI 5 on MSP430); the estimator ignores these.
  std::uint32_t isr_overhead_cycles{11};
  /// DCO frequency tolerance bound; each node draws its skew uniformly in
  /// [-tolerance, +tolerance].  A calibrated MSP430 DCO holds ~0.2 % over
  /// the operating envelope.  Drives TDMA guard-time requirements.
  double clock_tolerance{2.0e-3};
};

/// Nordic nRF2401 2.4 GHz transceiver, ShockBurst mode.
struct RadioParams {
  double supply_volts{2.8};
  double rx_current_amps{24.82e-3};   ///< measured @ 2.8 V
  double tx_current_amps{17.54e-3};   ///< measured @ 2.8 V (-5 dBm: 10.5 mA typ)
  double standby_current_amps{12e-6}; ///< datasheet; below the paper's meter
  double powerdown_current_amps{1e-6};
  /// Current while the MCU clocks bytes in/out of the ShockBurst FIFO.
  double clockin_current_amps{0.5e-3};
  sim::Duration settle_time{sim::Duration::microseconds(202)};  ///< Tsby->on
  sim::Duration powerup_time{sim::Duration::milliseconds(3)};   ///< Tpd->sby
  double spi_rate_bps{1.0e6};  ///< FIFO clock-in/out rate (<= 1 Mbps)
};

/// 25-channel biopotential ASIC (EEG/ECG front-end).
struct AsicParams {
  double supply_volts{3.0};
  double power_watts{10.5e-3};  ///< constant 10.5 mW @ 3.0 V (Section 5)
  std::uint32_t channels{25};
};

/// On-chip 12-bit SAR ADC of the MSP430.
struct AdcParams {
  /// Sample-and-hold plus 13 ADC12CLK conversion clocks at 5 MHz.
  sim::Duration conversion_time{sim::Duration::from_microseconds(3.5)};
  std::uint32_t resolution_bits{12};
};

}  // namespace bansim::hw
