// Nordic nRF2401 transceiver model (ShockBurst mode).
//
// The model reproduces the chip behaviour the paper leans on (Sections 3.1
// and 4.2):
//  * ShockBurst: the MCU clocks a frame into the on-chip FIFO at the SPI
//    rate, the radio then bursts it at 1 Mbps — so MCU involvement and air
//    occupation are decoupled.
//  * Hardware CRC-16: frames corrupted by collisions fail the CRC inside
//    the radio and are silently discarded; the MCU never wakes.
//  * Hardware address filter: frames addressed to other nodes are received
//    (RX energy is burned — that is the overhearing cost) but never
//    forwarded to the MCU.
//  * Power staging: power-down -> standby costs a 3 ms crystal start-up;
//    standby -> TX/RX costs a 202 us settling time during which the PA/LNA
//    already draws the full mode current.  These transients are what the
//    paper's coarse estimator does not see.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "energy/energy_meter.hpp"
#include "hw/params.hpp"
#include "net/packet.hpp"
#include "phy/air_frame.hpp"
#include "phy/channel.hpp"
#include "sim/context.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::hw {

/// Radio power/functional states; indices double as EnergyMeter states.
enum class RadioState : int {
  kPowerDown = 0,
  kStandby = 1,
  kPoweringUp = 2,   ///< crystal start-up, power-down -> standby
  kTxClockIn = 3,    ///< MCU shifting the frame into the FIFO
  kTxSettle = 4,     ///< PLL/PA settling before the burst
  kTxAir = 5,        ///< frame on the air
  kRxSettle = 6,     ///< LNA/PLL settling before listen
  kRxListen = 7,     ///< idle listening / receiving
  kRxClockOut = 8,   ///< MCU shifting a received frame out of the FIFO
};

[[nodiscard]] const char* to_string(RadioState s);

/// Event counters a validation run inspects.
struct RadioStats {
  std::uint64_t tx_frames{0};
  std::uint64_t rx_delivered{0};      ///< passed CRC + address, given to MCU
  std::uint64_t rx_crc_dropped{0};    ///< collision-corrupted, CRC failed
  std::uint64_t rx_addr_filtered{0};  ///< overheard frames dropped in hardware
  std::uint64_t rx_missed{0};         ///< frame started while not listening
};

class RadioNrf2401 final : public phy::MediumListener {
 public:
  /// Driver-facing completion callbacks.
  struct Callbacks {
    /// A CRC-valid frame addressed to this node finished clocking out.
    std::function<void(const net::Packet&)> on_receive;
    /// send() finished; the radio is back in standby.
    std::function<void()> on_send_done;
    /// The FIFO holds a frame for us; clock-out is starting.  Lets the
    /// driver charge the MCU for the SPI read.
    std::function<void(std::size_t frame_bytes)> on_clockout_start;
  };

  RadioNrf2401(sim::SimContext& context, phy::Channel& channel,
               std::string node_name, const RadioParams& params,
               const phy::PhyConfig& phy_config);

  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }
  void set_local_address(net::NodeId address) { address_ = address; }
  [[nodiscard]] net::NodeId local_address() const { return address_; }

  /// Commands.  Each asserts it is legal in the current state.
  /// start_rx/send issued while powered down (or still inside the 3 ms
  /// crystal start-up) model the firmware waiting out the datasheet
  /// power-up time: the radio powers up if needed and the command takes
  /// effect on reaching standby, never mid-start-up.
  void power_down();
  void power_up();              ///< power-down -> (3 ms) -> standby
  void start_rx();              ///< standby -> (settle) -> listen
  void stop_rx();               ///< listen/settle -> standby
  void send(const net::Packet& packet);  ///< standby -> clock-in -> settle -> air -> standby

  [[nodiscard]] RadioState state() const { return state_; }
  [[nodiscard]] bool busy() const {
    return state_ != RadioState::kStandby && state_ != RadioState::kPowerDown;
  }
  [[nodiscard]] const RadioStats& stats() const { return stats_; }
  [[nodiscard]] const energy::EnergyMeter& meter() const { return meter_; }
  [[nodiscard]] energy::EnergyMeter& meter() { return meter_; }
  [[nodiscard]] const phy::PhyConfig& phy_config() const { return phy_config_; }
  [[nodiscard]] const RadioParams& params() const { return params_; }

  /// This radio's listener id on the channel (AirFrame::tx_id).
  [[nodiscard]] std::uint32_t channel_id() const { return channel_id_; }

  /// Energy-detect carrier sense at this radio's position (see
  /// phy::Channel::busy_at).  The nRF2401 itself has no CCA; this models
  /// the CCA-capable front end contention MACs assume.
  [[nodiscard]] bool channel_busy() const {
    return channel_.busy_at(channel_id_);
  }

  /// Fault injection: wedges the receiver — the chip keeps drawing its
  /// mode current and reports itself listening, but never latches another
  /// frame until it is power-cycled (power_down() clears the condition),
  /// the real-world "RX dead until reset" failure of early ShockBurst
  /// silicon.  Energy accounting and the FSM are unaffected.
  void force_lockup() { locked_up_ = true; }
  [[nodiscard]] bool locked_up() const { return locked_up_; }

  /// Run-reset: powered down with no latched frame, no lock-up, zero
  /// stats and a fresh meter.  Wiring survives: the channel attachment
  /// (channel_id_), local address and driver callbacks are configuration.
  /// The caller guarantees the event queue was cleared first, so no stale
  /// FSM completion can fire into the reset chip (epoch_ additionally
  /// guards the pattern).
  void reset();

  /// Duration of the SPI transfer of `bytes` into/out of the FIFO.
  [[nodiscard]] sim::Duration spi_time(std::size_t bytes) const;

  // phy::MediumListener
  void on_frame_start(const phy::AirFrame& frame) override;
  void on_frame_end(const phy::AirFrame& frame, bool corrupted) override;

 private:
  void enter(RadioState next);
  /// Schedules `fn` after `d`, dropped if another command supersedes it.
  void after(sim::Duration d, std::function<void()> fn);

  sim::SimContext& context_;
  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  phy::Channel& channel_;
  std::string node_;
  sim::TraceNodeId trace_node_;
  RadioParams params_;
  phy::PhyConfig phy_config_;
  Callbacks callbacks_;
  net::NodeId address_{net::kBroadcastId};
  std::uint32_t channel_id_{0};
  RadioState state_{RadioState::kPowerDown};
  std::uint64_t epoch_{0};  ///< invalidates superseded scheduled completions
  sim::TimePoint ready_at_{};  ///< crystal start-up completion while kPoweringUp
  std::optional<std::uint64_t> latched_frame_;  ///< key of frame being received
  bool locked_up_{false};  ///< receiver wedged until the next power-cycle
  RadioStats stats_;
  energy::EnergyMeter meter_;
};

}  // namespace bansim::hw
