#include "hw/mcu.hpp"

#include "sim/check_hooks.hpp"

namespace bansim::hw {

const char* to_string(McuMode m) {
  switch (m) {
    case McuMode::kActive: return "active";
    case McuMode::kLpm1: return "lpm1";
    case McuMode::kLpm3: return "lpm3";
    case McuMode::kLpm4: return "lpm4";
  }
  return "?";
}

namespace {

std::vector<energy::PowerState> mcu_states(const McuParams& p) {
  return {
      {"active", p.active_current_amps},
      {"lpm1", p.lpm_current_amps},
      {"lpm3", p.lpm3_current_amps},
      {"lpm4", p.lpm4_current_amps},
  };
}

}  // namespace

Mcu::Mcu(sim::SimContext& context, std::string node_name,
         const McuParams& params, double clock_skew)
    : context_{context}, simulator_{context.simulator},
      tracer_{context.tracer},
      node_{std::move(node_name)}, trace_node_{tracer_.intern(node_)},
      params_{params}, clock_skew_{clock_skew},
      meter_{"mcu", params.supply_volts, mcu_states(params)} {}

sim::Duration Mcu::cycles_to_time(std::uint64_t cycles) const {
  const double nominal_s = static_cast<double>(cycles) / params_.cpu_hz;
  return sim::Duration::from_seconds(nominal_s * (1.0 + clock_skew_));
}

sim::Duration Mcu::local_to_true(sim::Duration local) const {
  return local.scaled(1.0 + clock_skew_);
}

sim::Duration Mcu::true_to_local(sim::Duration true_time) const {
  return true_time.scaled(1.0 / (1.0 + clock_skew_));
}

sim::Duration Mcu::local_clock(sim::TimePoint t) const {
  return local_clock_base_ + true_to_local(t - true_base_);
}

void Mcu::set_clock_skew(double skew) {
  const sim::TimePoint now = simulator_.now();
  local_clock_base_ = local_clock(now);
  true_base_ = now;
  clock_skew_ = skew;
  tracer_.emit(now, sim::TraceCategory::kMcu, trace_node_,
               [&](sim::TraceMessage& m) { m << "dco skew step -> " << skew; });
}

void Mcu::reset(double clock_skew) {
  clock_skew_ = clock_skew;
  local_clock_base_ = sim::Duration::zero();
  true_base_ = sim::TimePoint{};
  mode_ = McuMode::kActive;
  wakeups_ = 0;
  meter_.reset();
}

sim::Duration Mcu::enter(McuMode mode) {
  if (mode == mode_) return sim::Duration::zero();
  const bool waking = mode == McuMode::kActive;
  if (auto* hooks = context_.check_hooks()) {
    hooks->on_mcu_mode(this, static_cast<int>(mode_), static_cast<int>(mode),
                       simulator_.now());
  }
  meter_.transition(static_cast<int>(mode), simulator_.now());
  tracer_.emit(simulator_.now(), sim::TraceCategory::kMcu, trace_node_,
               [&](sim::TraceMessage& m) { m << "mcu -> " << to_string(mode); });
  mode_ = mode;
  if (waking) {
    ++wakeups_;
    return params_.wakeup_latency;
  }
  return sim::Duration::zero();
}

}  // namespace bansim::hw
