// Hardware compare timer (Timer_A-style).
//
// The OS timer service virtualizes many software timers over this single
// compare unit.  Crucially, the unit counts the node's *local* clock: the
// MCU's DCO skew stretches or shrinks every programmed interval, which is
// the physical source of beacon drift between BAN nodes and the reason the
// TDMA MAC needs guard times.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/mcu.hpp"
#include "sim/simulator.hpp"

namespace bansim::hw {

class TimerUnit {
 public:
  TimerUnit(sim::Simulator& simulator, Mcu& mcu);

  /// Programs the compare register to fire `isr` after `local_delay`
  /// measured on this node's clock.  Re-arming replaces any pending alarm.
  void set_alarm(sim::Duration local_delay, std::function<void()> isr);

  /// Clears the pending alarm, if any.
  void cancel();

  [[nodiscard]] bool armed() const { return handle_.pending(); }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Run-reset: forgets the pending alarm (the caller cleared the event
  /// queue, so the handle is stale anyway) and zeroes the fire count.
  void reset() {
    handle_ = sim::EventHandle{};
    fired_ = 0;
  }

 private:
  sim::Simulator& simulator_;
  Mcu& mcu_;
  sim::EventHandle handle_;
  std::uint64_t fired_{0};
};

}  // namespace bansim::hw
