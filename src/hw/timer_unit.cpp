#include "hw/timer_unit.hpp"

namespace bansim::hw {

TimerUnit::TimerUnit(sim::Simulator& simulator, Mcu& mcu)
    : simulator_{simulator}, mcu_{mcu} {}

void TimerUnit::set_alarm(sim::Duration local_delay, std::function<void()> isr) {
  cancel();
  const sim::Duration true_delay = mcu_.local_to_true(local_delay);
  handle_ = simulator_.schedule_in(true_delay, [this, isr = std::move(isr)] {
    ++fired_;
    isr();
  });
}

void TimerUnit::cancel() {
  if (handle_.pending()) handle_.cancel();
}

}  // namespace bansim::hw
