#include "hw/radio_nrf2401.hpp"

#include <cassert>
#include <utility>

#include "sim/check_hooks.hpp"

namespace bansim::hw {

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::kPowerDown: return "power_down";
    case RadioState::kStandby: return "standby";
    case RadioState::kPoweringUp: return "powering_up";
    case RadioState::kTxClockIn: return "tx_clock_in";
    case RadioState::kTxSettle: return "tx_settle";
    case RadioState::kTxAir: return "tx_air";
    case RadioState::kRxSettle: return "rx_settle";
    case RadioState::kRxListen: return "rx_listen";
    case RadioState::kRxClockOut: return "rx_clock_out";
  }
  return "?";
}

namespace {

std::vector<energy::PowerState> radio_states(const RadioParams& p) {
  return {
      {"power_down", p.powerdown_current_amps},
      {"standby", p.standby_current_amps},
      {"powering_up", p.standby_current_amps},
      {"tx_clock_in", p.clockin_current_amps},
      {"tx_settle", p.tx_current_amps},
      {"tx_air", p.tx_current_amps},
      {"rx_settle", p.rx_current_amps},
      {"rx_listen", p.rx_current_amps},
      {"rx_clock_out", p.rx_current_amps},
  };
}

}  // namespace

RadioNrf2401::RadioNrf2401(sim::SimContext& context, phy::Channel& channel,
                           std::string node_name, const RadioParams& params,
                           const phy::PhyConfig& phy_config)
    : context_{context}, simulator_{context.simulator},
      tracer_{context.tracer},
      channel_{channel}, node_{std::move(node_name)},
      trace_node_{tracer_.intern(node_)}, params_{params},
      phy_config_{phy_config},
      meter_{"radio", params.supply_volts, radio_states(params)} {
  channel_id_ = channel_.attach(*this);
}

sim::Duration RadioNrf2401::spi_time(std::size_t bytes) const {
  return sim::Duration::from_seconds(static_cast<double>(bytes) * 8.0 /
                                     params_.spi_rate_bps);
}

void RadioNrf2401::enter(RadioState next) {
  if (next == state_) return;
  if (auto* hooks = context_.check_hooks()) {
    hooks->on_radio_state(this, static_cast<int>(state_),
                          static_cast<int>(next), simulator_.now());
  }
  meter_.transition(static_cast<int>(next), simulator_.now());
  tracer_.emit(simulator_.now(), sim::TraceCategory::kRadio, trace_node_,
               [&](sim::TraceMessage& m) {
                 m << "radio " << to_string(state_) << " -> "
                   << to_string(next);
               });
  state_ = next;
}

void RadioNrf2401::after(sim::Duration d, std::function<void()> fn) {
  const std::uint64_t epoch = epoch_;
  simulator_.schedule_in(d, [this, epoch, fn = std::move(fn)] {
    if (epoch == epoch_) fn();
  });
}

void RadioNrf2401::reset() {
  ++epoch_;
  state_ = RadioState::kPowerDown;
  ready_at_ = sim::TimePoint{};
  latched_frame_.reset();
  locked_up_ = false;
  stats_ = RadioStats{};
  meter_.reset();
}

void RadioNrf2401::power_down() {
  ++epoch_;
  latched_frame_.reset();
  locked_up_ = false;  // a power-cycle is the documented lock-up recovery
  enter(RadioState::kPowerDown);
}

void RadioNrf2401::power_up() {
  assert(state_ == RadioState::kPowerDown);
  ++epoch_;
  ready_at_ = simulator_.now() + params_.powerup_time;
  enter(RadioState::kPoweringUp);
  after(params_.powerup_time, [this] { enter(RadioState::kStandby); });
}

void RadioNrf2401::start_rx() {
  if (state_ == RadioState::kPowerDown) power_up();
  if (state_ == RadioState::kPoweringUp) {
    // Firmware waits out the crystal start-up; no epoch bump, so the
    // pending standby entry still fires (and a power_down cancels us).
    after(ready_at_ - simulator_.now(), [this] { start_rx(); });
    return;
  }
  assert(state_ == RadioState::kStandby);
  ++epoch_;
  enter(RadioState::kRxSettle);
  after(params_.settle_time, [this] { enter(RadioState::kRxListen); });
}

void RadioNrf2401::stop_rx() {
  assert(state_ == RadioState::kRxSettle || state_ == RadioState::kRxListen ||
         state_ == RadioState::kRxClockOut);
  ++epoch_;
  latched_frame_.reset();
  enter(RadioState::kStandby);
}

void RadioNrf2401::send(const net::Packet& packet) {
  if (state_ == RadioState::kPowerDown) power_up();
  if (state_ == RadioState::kPoweringUp) {
    // Firmware waits out the crystal start-up; no epoch bump, so the
    // pending standby entry still fires (and a power_down cancels us).
    after(ready_at_ - simulator_.now(), [this, packet] { send(packet); });
    return;
  }
  assert(state_ == RadioState::kStandby &&
         "nRF2401 is half duplex: stop RX before sending");
  ++epoch_;
  auto bytes = packet.serialize();
  const auto nbytes = bytes.size();
  const sim::Duration clock_in = spi_time(nbytes);
  const sim::Duration on_air = phy::air_time(phy_config_, nbytes);

  enter(RadioState::kTxClockIn);
  after(clock_in, [this, bytes = std::move(bytes), on_air]() mutable {
    enter(RadioState::kTxSettle);
    after(params_.settle_time, [this, bytes = std::move(bytes), on_air]() mutable {
      enter(RadioState::kTxAir);
      ++stats_.tx_frames;
      channel_.transmit(channel_id_, std::move(bytes), on_air);
      after(on_air, [this] {
        enter(RadioState::kStandby);
        if (callbacks_.on_send_done) callbacks_.on_send_done();
      });
    });
  });
}

void RadioNrf2401::on_frame_start(const phy::AirFrame& frame) {
  if (state_ == RadioState::kRxListen && !latched_frame_ && !locked_up_) {
    latched_frame_ = frame.id;
  } else {
    // Started while we were settling, clocking a frame out, transmitting or
    // asleep: the receiver cannot synchronize to it.
    ++stats_.rx_missed;
  }
}

void RadioNrf2401::on_frame_end(const phy::AirFrame& frame, bool corrupted) {
  if (!latched_frame_ || *latched_frame_ != frame.id) return;
  latched_frame_.reset();

  if (corrupted) {
    // Collision garbled the frame: the hardware CRC engine rejects it and
    // the MCU never learns it existed.
    ++stats_.rx_crc_dropped;
    tracer_.emit(simulator_.now(), sim::TraceCategory::kRadio, trace_node_,
                 [](sim::TraceMessage& m) { m << "frame dropped by hardware CRC"; });
    return;
  }
  auto packet = net::Packet::deserialize(frame.bytes);
  if (!packet) {
    ++stats_.rx_crc_dropped;
    return;
  }
  if (packet->header.dest != address_ &&
      packet->header.dest != net::kBroadcastId) {
    // Overheard: RX energy was spent, but the hardware address filter stops
    // the frame here (Section 4.2, "Overhearing").
    ++stats_.rx_addr_filtered;
    tracer_.emit(simulator_.now(), sim::TraceCategory::kRadio, trace_node_,
                 [](sim::TraceMessage& m) {
                   m << "frame filtered by hardware address check (overheard)";
                 });
    return;
  }

  ++epoch_;
  enter(RadioState::kRxClockOut);
  const std::size_t nbytes = frame.bytes.size();
  if (callbacks_.on_clockout_start) callbacks_.on_clockout_start(nbytes);
  after(spi_time(nbytes), [this, pkt = std::move(*packet)] {
    enter(RadioState::kRxListen);
    ++stats_.rx_delivered;
    if (callbacks_.on_receive) callbacks_.on_receive(pkt);
  });
}

}  // namespace bansim::hw
