#include "hw/sensor_asic.hpp"

#include <cassert>

namespace bansim::hw {

SensorAsic::SensorAsic(sim::Simulator& simulator, const AsicParams& params)
    : simulator_{simulator}, params_{params}, signals_(params.channels) {}

void SensorAsic::set_channel_signal(std::uint32_t channel, ChannelSignal signal) {
  assert(channel < signals_.size());
  signals_[channel] = std::move(signal);
}

double SensorAsic::read_channel(std::uint32_t channel) const {
  if (channel >= signals_.size() || !signals_[channel]) return 0.0;
  return signals_[channel](simulator_.now());
}

}  // namespace bansim::hw
