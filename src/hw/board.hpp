// Sensor-node hardware platform: the composition of MCU, radio, ADC,
// biopotential ASIC and hardware timer described in Section 3.1, with a
// consolidated energy view.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "energy/energy_meter.hpp"
#include "hw/adc12.hpp"
#include "hw/mcu.hpp"
#include "hw/params.hpp"
#include "hw/radio_nrf2401.hpp"
#include "hw/sensor_asic.hpp"
#include "hw/timer_unit.hpp"
#include "phy/channel.hpp"
#include "sim/context.hpp"

namespace bansim::hw {

/// All component parameter sets of one board.
struct BoardParams {
  McuParams mcu;
  RadioParams radio;
  AsicParams asic;
  AdcParams adc;
  phy::PhyConfig phy;
};

class Board {
 public:
  /// `clock_skew` is this node's DCO frequency error (e.g. +1.3e-4).
  Board(sim::SimContext& context, phy::Channel& channel,
        std::string node_name, const BoardParams& params, double clock_skew);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Mcu& mcu() { return mcu_; }
  [[nodiscard]] RadioNrf2401& radio() { return radio_; }
  [[nodiscard]] Adc12& adc() { return adc_; }
  [[nodiscard]] SensorAsic& asic() { return asic_; }
  [[nodiscard]] TimerUnit& timer() { return timer_; }
  [[nodiscard]] const Mcu& mcu() const { return mcu_; }
  [[nodiscard]] const RadioNrf2401& radio() const { return radio_; }

  /// Component-level energy snapshot (mcu, radio, asic) at `now`.  This is
  /// the "Real" column of the validation tables: what a bench ammeter on
  /// each rail would have integrated.
  [[nodiscard]] std::vector<energy::ComponentEnergy> breakdown(
      sim::TimePoint now) const;

  /// Run-reset: every component back to its just-constructed state (the
  /// ASIC front-end is stateless — constant power from time zero, which
  /// the clock rewind handles).  `clock_skew` replaces the DCO skew, as
  /// the builder re-draws it per run.
  void reset(double clock_skew);

 private:
  std::string name_;
  Mcu mcu_;
  RadioNrf2401 radio_;
  Adc12 adc_;
  SensorAsic asic_;
  TimerUnit timer_;
};

}  // namespace bansim::hw
