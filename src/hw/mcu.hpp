// MSP430-like microcontroller model.
//
// The MCU is modelled at the power-state level, exactly the abstraction the
// paper argues is sufficient (Section 4.1): an active mode and the low-power
// modes, with energy = I * Vdd * t per state.  What the model adds beyond
// the estimator — and what creates the realistic "Real vs Sim" gap — are the
// second-order effects of physical silicon: a per-node DCO clock skew, a
// 6 us wake-up latency on every LPM exit, and interrupt entry/exit overhead
// cycles.
#pragma once

#include <cstdint>
#include <string>

#include "energy/energy_meter.hpp"
#include "hw/params.hpp"
#include "sim/context.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bansim::hw {

/// Power modes; the TinyOS scheduler of the paper only ever uses kLpm1
/// ("the first low power mode ... referred as the power saving mode").
enum class McuMode : int {
  kActive = 0,
  kLpm1 = 1,
  kLpm3 = 2,
  kLpm4 = 3,
};

[[nodiscard]] const char* to_string(McuMode m);

class Mcu {
 public:
  Mcu(sim::SimContext& context, std::string node_name, const McuParams& params,
      double clock_skew);

  /// Converts a nominal cycle count into wall time on *this* device's
  /// (skewed) clock.
  [[nodiscard]] sim::Duration cycles_to_time(std::uint64_t cycles) const;

  /// Converts a nominal duration measured on this device's clock (e.g. a
  /// timer programmed for D) into true simulated time.
  [[nodiscard]] sim::Duration local_to_true(sim::Duration local) const;

  /// Inverse of local_to_true (true simulated time -> this device's clock).
  [[nodiscard]] sim::Duration true_to_local(sim::Duration true_time) const;

  /// Absolute local-clock reading (ns since boot on this device's crystal)
  /// at true instant `t`.  Piecewise-affine: a clock-skew step rebases the
  /// mapping so the reading stays continuous across the step instead of
  /// rescaling the whole past.
  [[nodiscard]] sim::Duration local_clock(sim::TimePoint t) const;

  /// Fault injection: steps the DCO frequency error to `skew` (temperature
  /// shock, supply sag).  The local clock is rebased at the current instant,
  /// so already-armed absolute local deadlines keep their meaning and only
  /// tick by at the new rate.
  void set_clock_skew(double skew);

  /// Enters a power mode at the current simulation time.  Transitions from
  /// an LPM to kActive incur the wake-up latency: the mode becomes kActive
  /// immediately for energy purposes (the core draws active current while
  /// the clocks restart) but useful work can only begin after
  /// wakeup_latency; the caller receives that penalty as the return value.
  sim::Duration enter(McuMode mode);

  [[nodiscard]] McuMode mode() const { return mode_; }
  [[nodiscard]] const McuParams& params() const { return params_; }
  [[nodiscard]] double clock_skew() const { return clock_skew_; }
  [[nodiscard]] std::uint64_t wakeups() const { return wakeups_; }

  /// Cycle cost of an interrupt beyond its handler body.
  [[nodiscard]] std::uint64_t isr_overhead_cycles() const {
    return params_.isr_overhead_cycles;
  }

  /// Energy metering.
  [[nodiscard]] const energy::EnergyMeter& meter() const { return meter_; }
  [[nodiscard]] energy::EnergyMeter& meter() { return meter_; }

  /// Run-reset: back to the just-constructed MCU — active mode at time
  /// zero, zero wakeups, fresh meter, and the DCO skew replaced with
  /// `clock_skew` (the builder re-draws it from the skew stream, so a
  /// reseeded run gets the same skew a rebuild would).  Undoes any
  /// fault-injected set_clock_skew() steps.
  void reset(double clock_skew);

 private:
  sim::SimContext& context_;
  sim::Simulator& simulator_;
  sim::Tracer& tracer_;
  std::string node_;
  sim::TraceNodeId trace_node_;
  McuParams params_;
  double clock_skew_;
  /// local_clock() affine pieces: reading at `true_base_` is
  /// `local_clock_base_`; both stay zero until the first skew step, which
  /// keeps the default mapping bit-identical to a pure scaling.
  sim::Duration local_clock_base_{sim::Duration::zero()};
  sim::TimePoint true_base_{};
  McuMode mode_{McuMode::kActive};
  std::uint64_t wakeups_{0};
  energy::EnergyMeter meter_;
};

}  // namespace bansim::hw
