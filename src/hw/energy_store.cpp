#include "hw/energy_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bansim::hw {

const char* to_string(HarvestParams::Profile p) {
  switch (p) {
    case HarvestParams::Profile::kConstant: return "constant";
    case HarvestParams::Profile::kSine: return "sine";
    case HarvestParams::Profile::kSquare: return "square";
  }
  return "?";
}

double HarvestParams::power_at(sim::TimePoint t) const {
  switch (profile) {
    case Profile::kConstant:
      return std::max(0.0, watts);
    case Profile::kSine: {
      const double period_s = period.to_seconds();
      if (period_s <= 0.0) return std::max(0.0, floor_watts);
      const double theta =
          2.0 * M_PI * (t.since_epoch() - phase).to_seconds() / period_s;
      return std::max(0.0, floor_watts + watts * std::sin(theta));
    }
    case Profile::kSquare: {
      const double period_s = period.to_seconds();
      if (period_s <= 0.0) return std::max(0.0, floor_watts);
      double pos = std::fmod((t.since_epoch() - phase).to_seconds(), period_s);
      if (pos < 0.0) pos += period_s;
      const double on_len = std::clamp(duty, 0.0, 1.0) * period_s;
      return std::max(0.0, pos < on_len ? watts : floor_watts);
    }
  }
  return 0.0;
}

double HarvestParams::energy_between(sim::TimePoint t0,
                                     sim::TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  const double span = (t1 - t0).to_seconds();
  switch (profile) {
    case Profile::kConstant:
      return std::max(0.0, watts) * span;
    case Profile::kSquare: {
      // Exact piecewise integral: whole periods in one multiply, then walk
      // the (at most three) partial pieces of the remainder.
      const double period_s = period.to_seconds();
      if (period_s <= 0.0) return std::max(0.0, floor_watts) * span;
      const double on = std::max(0.0, watts);
      const double off = std::max(0.0, floor_watts);
      const double on_len = std::clamp(duty, 0.0, 1.0) * period_s;
      const double per_period = on * on_len + off * (period_s - on_len);
      double pos = std::fmod((t0.since_epoch() - phase).to_seconds(), period_s);
      if (pos < 0.0) pos += period_s;
      double left = span;
      const double full = std::floor(left / period_s);
      double total = full * per_period;
      left -= full * period_s;
      while (left > 0.0) {
        const double edge = pos < on_len ? on_len : period_s;
        const double take = std::min(left, edge - pos);
        total += (pos < on_len ? on : off) * take;
        pos += take;
        left -= take;
        if (pos >= period_s) pos = 0.0;
      }
      return total;
    }
    case Profile::kSine: {
      // Deterministic fixed-segment trapezoid: the clamp at zero makes the
      // closed form piecewise, and the driver's sampling windows are short
      // against the period, so 32 segments is plenty.
      constexpr int kSteps = 32;
      const double dt = span / kSteps;
      double total = 0.0;
      for (int i = 0; i < kSteps; ++i) {
        const sim::TimePoint a = t0 + sim::Duration::from_seconds(dt * i);
        const sim::TimePoint b = t0 + sim::Duration::from_seconds(dt * (i + 1));
        total += 0.5 * (power_at(a) + power_at(b)) * dt;
      }
      return total;
    }
  }
  return 0.0;
}

double HarvestParams::average_watts() const {
  switch (profile) {
    case Profile::kConstant:
      return std::max(0.0, watts);
    case Profile::kSquare: {
      const double d = std::clamp(duty, 0.0, 1.0);
      return d * std::max(0.0, watts) + (1.0 - d) * std::max(0.0, floor_watts);
    }
    case Profile::kSine: {
      if (period.to_seconds() <= 0.0) return std::max(0.0, floor_watts);
      // Mean over one period of the clamped swing (256-segment trapezoid;
      // exact when the swing never dips below zero).
      if (floor_watts - std::fabs(watts) >= 0.0) return floor_watts;
      return energy_between(sim::TimePoint::zero() + phase,
                            sim::TimePoint::zero() + phase + period) /
             period.to_seconds();
    }
  }
  return 0.0;
}

std::string StorageParams::validate() const {
  if (!enabled) return "";
  if (!check.is_positive()) return "storage: check_ms must be > 0";
  if (kind == StorageKind::kBattery) {
    if (battery.capacity_mah <= 0.0) {
      return "battery: capacity_mah must be > 0";
    }
    if (battery.nominal_volts <= 0.0) {
      return "battery: nominal_volts must be > 0";
    }
    if (!(battery.full_volts > battery.empty_volts &&
          battery.empty_volts >= battery.dead_volts &&
          battery.dead_volts >= 0.0)) {
      return "battery: need full_volts > empty_volts >= dead_volts >= 0";
    }
    if (battery.rated_c <= 0.0) return "battery: rated_c must be > 0";
    if (battery.peukert_exponent < 1.0) {
      return "battery: peukert_exponent must be >= 1";
    }
  } else {
    if (capacitor.capacitance_farads < 0.0) {
      return "capacitor: capacitance_f must be >= 0";
    }
    if (!(capacitor.full_volts >= capacitor.turnon_volts &&
          capacitor.turnon_volts >= capacitor.turnoff_volts &&
          capacitor.turnoff_volts >= 0.0)) {
      return "capacitor: need full_volts >= turnon_volts >= turnoff_volts "
             ">= 0";
    }
  }
  if (harvest.enabled) {
    if ((harvest.profile == HarvestParams::Profile::kSine ||
         harvest.profile == HarvestParams::Profile::kSquare) &&
        !harvest.period.is_positive()) {
      return "harvest: period_ms must be > 0 for sine/square profiles";
    }
    if (harvest.profile == HarvestParams::Profile::kSquare &&
        (harvest.duty < 0.0 || harvest.duty > 1.0)) {
      return "harvest: duty must be in [0, 1]";
    }
  }
  return "";
}

EnergyStore::EnergyStore(const StorageParams& params) : params_{params} {
  if (params_.kind == StorageKind::kBattery) {
    capacity_joules_ = params_.battery.capacity_mah * 1e-3 * 3600.0 *
                       params_.battery.nominal_volts;
  } else {
    capacity_joules_ = 0.5 * params_.capacitor.capacitance_farads *
                       params_.capacitor.full_volts *
                       params_.capacitor.full_volts;
  }
  remaining_joules_ = capacity_joules_;
  initial_joules_ = capacity_joules_;
}

double EnergyStore::cutoff_joules() const {
  if (params_.kind == StorageKind::kBattery) {
    const double span = params_.battery.full_volts - params_.battery.dead_volts;
    if (span <= 0.0) return 0.0;
    const double cutoff_soc = std::clamp(
        (params_.battery.empty_volts - params_.battery.dead_volts) / span, 0.0,
        1.0);
    return cutoff_soc * capacity_joules_;
  }
  return joules_at_volts(params_.capacitor.turnoff_volts);
}

double EnergyStore::joules_at_volts(double volts) const {
  if (params_.kind == StorageKind::kBattery) {
    const double span = params_.battery.full_volts - params_.battery.dead_volts;
    if (span <= 0.0) return 0.0;
    const double soc =
        std::clamp((volts - params_.battery.dead_volts) / span, 0.0, 1.0);
    return soc * capacity_joules_;
  }
  return 0.5 * params_.capacitor.capacitance_farads * volts * volts;
}

double EnergyStore::draw(double joules) {
  const double request = std::max(0.0, joules);
  requested_ += request;
  const double removed = std::min(remaining_joules_, request);
  remaining_joules_ -= removed;
  drawn_ += removed;
  return removed;
}

double EnergyStore::charge(double joules) {
  const double offer = std::max(0.0, joules);
  income_ += offer;
  const double stored = std::min(capacity_joules_ - remaining_joules_, offer);
  remaining_joules_ += stored;
  stored_ += stored;
  overflow_ += offer - stored;
  return stored;
}

bool EnergyStore::depleted() const {
  return remaining_joules_ <= cutoff_joules();
}

bool EnergyStore::can_power_on() const {
  if (params_.kind == StorageKind::kBattery) return false;  // permanent death
  // Hysteresis: boot only once the voltage recovers to turnon_volts, and
  // never if the (possibly zero-capacitance) store cannot even clear the
  // turnoff threshold when full.
  return remaining_joules_ >= joules_at_volts(params_.capacitor.turnon_volts) &&
         remaining_joules_ > cutoff_joules();
}

double EnergyStore::volts() const {
  if (params_.kind == StorageKind::kBattery) {
    return params_.battery.dead_volts +
           (params_.battery.full_volts - params_.battery.dead_volts) *
               state_of_charge();
  }
  const double c = params_.capacitor.capacitance_farads;
  if (c <= 0.0) return 0.0;
  return std::sqrt(2.0 * remaining_joules_ / c);
}

double projected_hours(const StorageParams& params, double node_watts,
                       double harvest_watts) {
  const double net = node_watts - harvest_watts;
  if (net <= 0.0) return std::numeric_limits<double>::infinity();
  if (params.kind == StorageKind::kBattery) {
    return Battery{params.battery}.hours_at(net);
  }
  const EnergyStore full{params};
  const double usable =
      std::max(0.0, full.capacity_joules() -
                        0.5 * params.capacitor.capacitance_farads *
                            params.capacitor.turnoff_volts *
                            params.capacitor.turnoff_volts);
  return usable / net / 3600.0;
}

}  // namespace bansim::hw
