#include "hw/board.hpp"

namespace bansim::hw {

Board::Board(sim::SimContext& context, phy::Channel& channel,
             std::string node_name, const BoardParams& params,
             double clock_skew)
    : name_{std::move(node_name)},
      mcu_{context, name_, params.mcu, clock_skew},
      radio_{context, channel, name_, params.radio, params.phy},
      adc_{context.simulator, params.adc},
      asic_{context.simulator, params.asic},
      timer_{context.simulator, mcu_} {
  // The ADC samples whatever the ASIC front-end presents.
  adc_.set_input([this](std::uint32_t adc_channel) {
    return asic_.read_channel(adc_channel);
  });
}

void Board::reset(double clock_skew) {
  mcu_.reset(clock_skew);
  radio_.reset();
  adc_.reset();
  timer_.reset();
}

std::vector<energy::ComponentEnergy> Board::breakdown(sim::TimePoint now) const {
  std::vector<energy::ComponentEnergy> rows;

  const auto collect = [&](const energy::EnergyMeter& m) {
    energy::ComponentEnergy row;
    row.component = m.component();
    row.joules = m.total_energy(now);
    for (std::size_t s = 0; s < m.num_states(); ++s) {
      row.per_state.emplace_back(m.state(s).name,
                                 m.energy_in(static_cast<int>(s), now));
    }
    rows.push_back(std::move(row));
  };

  collect(mcu_.meter());
  collect(radio_.meter());

  energy::ComponentEnergy asic_row;
  asic_row.component = "asic";
  asic_row.joules = asic_.energy(now);
  asic_row.per_state.emplace_back("constant", asic_row.joules);
  rows.push_back(std::move(asic_row));

  return rows;
}

}  // namespace bansim::hw
