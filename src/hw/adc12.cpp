#include "hw/adc12.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bansim::hw {

Adc12::Adc12(sim::Simulator& simulator, const AdcParams& params, double vref)
    : simulator_{simulator}, params_{params}, vref_{vref} {}

std::uint16_t Adc12::quantize(double volts) const {
  const auto full_scale = static_cast<double>((1u << params_.resolution_bits) - 1);
  const double clamped = std::clamp(volts, 0.0, vref_);
  return static_cast<std::uint16_t>(std::lround(clamped / vref_ * full_scale));
}

void Adc12::convert(std::uint32_t channel,
                    std::function<void(std::uint16_t)> done) {
  assert(!busy_ && "ADC12 single-conversion mode: one conversion at a time");
  busy_ = true;
  ++conversions_;
  simulator_.schedule_in(params_.conversion_time,
                         [this, channel, done = std::move(done)] {
                           busy_ = false;
                           const double v = input_ ? input_(channel) : 0.0;
                           done(quantize(v));
                         });
}

}  // namespace bansim::hw
