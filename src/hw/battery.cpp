#include "hw/battery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bansim::hw {

Battery::Battery(const BatteryParams& params)
    : params_{params},
      capacity_joules_{params.capacity_mah * 1e-3 * 3600.0 *
                       params.nominal_volts},
      remaining_joules_{capacity_joules_} {}

double Battery::draw(double joules) {
  const double removed = std::min(remaining_joules_, std::max(0.0, joules));
  remaining_joules_ -= removed;
  return removed;
}

double Battery::charge(double joules) {
  const double stored =
      std::min(capacity_joules_ - remaining_joules_, std::max(0.0, joules));
  remaining_joules_ += stored;
  return stored;
}

double Battery::cutoff_soc() const {
  const double span = params_.full_volts - params_.dead_volts;
  if (span <= 0.0) return 0.0;
  return std::clamp((params_.empty_volts - params_.dead_volts) / span, 0.0,
                    1.0);
}

double Battery::usable_joules() const {
  return std::max(0.0, remaining_joules_ - cutoff_joules());
}

double Battery::open_circuit_volts() const {
  return params_.dead_volts +
         (params_.full_volts - params_.dead_volts) * state_of_charge();
}

double Battery::hours_at(double watts) const {
  if (watts <= 0.0) return std::numeric_limits<double>::infinity();
  // Discharge rate in C (fraction of capacity per hour), relative to the
  // rate the capacity was rated at.
  const double c_rate = watts * 3600.0 / capacity_joules_;
  const double rated = std::max(params_.rated_c, 1e-9);
  // Peukert: usable charge shrinks as rate^(k-1) ABOVE the rated rate
  // only.  Clamping the ratio at 1 keeps derate >= 1, so the effective
  // charge can never exceed what the cell actually holds (the low-rate
  // divergence of the naive formula).
  const double ratio = std::max(c_rate / rated, 1.0);
  const double derate = std::pow(ratio, params_.peukert_exponent - 1.0);
  const double effective = usable_joules() / derate;
  return effective / watts / 3600.0;
}

double Harvester::accumulate(sim::TimePoint t0, sim::TimePoint t1, int steps) {
  if (t1 <= t0 || steps < 1) return 0.0;
  const double span = (t1 - t0).to_seconds();
  const double dt = span / steps;
  double stored = 0.0;
  for (int i = 0; i < steps; ++i) {
    const sim::TimePoint a = t0 + sim::Duration::from_seconds(dt * i);
    const sim::TimePoint b = t0 + sim::Duration::from_seconds(dt * (i + 1));
    // Charge step by step: once the cell tops out mid-window the remaining
    // segments overflow, and only the stored portion may be reported.
    const double step_joules = 0.5 * (profile_(a) + profile_(b)) * dt;
    total_income_ += step_joules;
    const double step_stored = battery_.charge(step_joules);
    total_stored_ += step_stored;
    stored += step_stored;
  }
  return stored;
}

double projected_lifetime_hours(const Battery& battery, double node_watts,
                                double harvest_watts) {
  return battery.hours_at(node_watts - harvest_watts);
}

}  // namespace bansim::hw
