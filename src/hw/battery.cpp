#include "hw/battery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bansim::hw {

Battery::Battery(const BatteryParams& params)
    : params_{params},
      capacity_joules_{params.capacity_mah * 1e-3 * 3600.0 *
                       params.nominal_volts},
      remaining_joules_{capacity_joules_} {}

void Battery::draw(double joules) {
  remaining_joules_ = std::max(0.0, remaining_joules_ - joules);
}

void Battery::charge(double joules) {
  remaining_joules_ = std::min(capacity_joules_, remaining_joules_ + joules);
}

double Battery::open_circuit_volts() const {
  return params_.empty_volts +
         (params_.full_volts - params_.empty_volts) * state_of_charge();
}

double Battery::hours_at(double watts) const {
  if (watts <= 0.0) return std::numeric_limits<double>::infinity();
  // Discharge rate in C (fraction of capacity per hour).
  const double c_rate = watts * 3600.0 / capacity_joules_;
  // Peukert: effective capacity = nominal / rate^(k-1), mild at BAN rates.
  const double derate = std::pow(std::max(c_rate, 1e-6),
                                 params_.peukert_exponent - 1.0);
  const double effective = remaining_joules_ / std::max(derate, 1e-9);
  return effective / watts / 3600.0;
}

double Harvester::accumulate(sim::TimePoint t0, sim::TimePoint t1, int steps) {
  if (t1 <= t0 || steps < 1) return 0.0;
  const double span = (t1 - t0).to_seconds();
  const double dt = span / steps;
  double joules = 0.0;
  for (int i = 0; i < steps; ++i) {
    const sim::TimePoint a = t0 + sim::Duration::from_seconds(dt * i);
    const sim::TimePoint b = t0 + sim::Duration::from_seconds(dt * (i + 1));
    joules += 0.5 * (profile_(a) + profile_(b)) * dt;
  }
  battery_.charge(joules);
  return joules;
}

double projected_lifetime_hours(const Battery& battery, double node_watts,
                                double harvest_watts) {
  return battery.hours_at(node_watts - harvest_watts);
}

}  // namespace bansim::hw
