// Per-node energy storage: the live store every running node draws from.
//
// The paper's platforms run "on very limited resources, such as batteries
// or energy scavengers" (Section 1).  An EnergyStore models either side of
// that "or": a battery cell (Peukert-derated, voltage-cutoff depletion,
// permanent death) or a capacitor-backed battery-less node (E = C*V^2/2,
// turnoff/turnon voltage hysteresis, reboots when harvest refills it).  A
// HarvestParams profile describes the scavenged income analytically —
// constant, sinusoidal or duty-cycled square — so the store integrates it
// in closed form without drawing randomness.
//
// The store itself is passive arithmetic: fault::StorageDriver samples each
// node's EnergyMeter residency into draw(), integrates the harvest profile
// into charge(), and routes depletion through the MAC's crash()/reboot()
// fault interface.  Every joule is accounted: the cumulative counters close
// as  drawn == requested (while charge remains)  and
// income == stored + overflow, which check::InvariantMonitor audits.
#pragma once

#include <cstdint>
#include <string>

#include "hw/battery.hpp"
#include "sim/time.hpp"

namespace bansim::hw {

enum class StorageKind : std::uint8_t { kBattery, kCapacitor };

[[nodiscard]] constexpr const char* to_string(StorageKind k) {
  return k == StorageKind::kBattery ? "battery" : "capacitor";
}

/// Capacitor-backed battery-less node: the store is E = C * V^2 / 2.  The
/// node browns out when the voltage sags to `turnoff_volts` and may power
/// back on once harvest income lifts it to `turnon_volts` — the gap is the
/// start-up hysteresis that keeps a trickle-charged node from boot-looping.
struct CapacitorParams {
  double capacitance_farads{0.1};  ///< small supercapacitor
  double full_volts{5.0};
  double turnoff_volts{2.0};
  double turnon_volts{3.0};
};

/// Analytic scavenged-power profile (thermoelectric / solar / kinetic).
/// Closed-form integrable, so income over a window is exact and
/// deterministic; power_at() is clamped at zero (a profile whose swing
/// crosses zero simply contributes nothing over the negative stretch).
struct HarvestParams {
  enum class Profile : std::uint8_t { kConstant, kSine, kSquare };

  bool enabled{false};
  Profile profile{Profile::kConstant};
  /// kConstant: the harvested power.  kSine: peak of the positive half
  /// swing around `floor_watts`.  kSquare: plateau while the burst is on.
  double watts{0.001};
  /// Baseline offset: kSine swings around it (negative dips clamp to 0),
  /// kSquare emits it between bursts, kConstant ignores it.
  double floor_watts{0.0};
  sim::Duration period{sim::Duration::seconds(60)};
  double duty{0.5};  ///< kSquare: on-fraction of each period
  sim::Duration phase{};

  /// Instantaneous harvested power at t, clamped >= 0.
  [[nodiscard]] double power_at(sim::TimePoint t) const;
  /// Exact integral of power_at over [t0, t1] in joules (0 when t1 <= t0).
  [[nodiscard]] double energy_between(sim::TimePoint t0,
                                      sim::TimePoint t1) const;
  /// Long-run mean of power_at (for lifetime projection).
  [[nodiscard]] double average_watts() const;
};

[[nodiscard]] const char* to_string(HarvestParams::Profile p);

/// Full storage description of one node ([storage] / [battery] /
/// [capacitor] / [harvest] INI sections; NodeSpec may override per node).
struct StorageParams {
  /// Master switch.  Disabled (the default) means the node is powered from
  /// the bench supply: no store, no driver events, runs bit-identical to
  /// builds that predate the storage subsystem.
  bool enabled{false};
  StorageKind kind{StorageKind::kBattery};
  BatteryParams battery{};
  CapacitorParams capacitor{};
  HarvestParams harvest{};
  /// Sampling interval of the storage driver (meter residency -> draw).
  sim::Duration check{sim::Duration::milliseconds(100)};

  /// Empty when well-formed, else the first problem (hard error upstream).
  [[nodiscard]] std::string validate() const;
};

/// One node's live energy store.  Pure arithmetic — no clock, no RNG —
/// driven by fault::StorageDriver.
class EnergyStore {
 public:
  explicit EnergyStore(const StorageParams& params);

  /// Removes up to `joules` (the node's metered consumption over a
  /// sampling window); returns the joules actually removed.  The request
  /// is always accounted in total_draw_requested(), so the books still
  /// close after the store runs dry while leakage keeps metering.
  double draw(double joules);

  /// Adds harvested income (clamped at full); returns the joules stored.
  /// The clamped remainder accumulates in total_overflow().
  double charge(double joules);

  /// True when the store can no longer power the node: battery at the
  /// voltage cutoff, capacitor at/below turnoff_volts.  Exact boundary
  /// depletes (a draw landing the store exactly on the threshold kills).
  [[nodiscard]] bool depleted() const;

  /// True when a dead node may boot again: capacitors recover once the
  /// voltage climbs back to turnon_volts; battery depletion is permanent.
  [[nodiscard]] bool can_power_on() const;

  [[nodiscard]] double capacity_joules() const { return capacity_joules_; }
  [[nodiscard]] double remaining_joules() const { return remaining_joules_; }
  [[nodiscard]] double initial_joules() const { return initial_joules_; }
  [[nodiscard]] double state_of_charge() const {
    return capacity_joules_ > 0.0 ? remaining_joules_ / capacity_joules_ : 0.0;
  }
  /// Terminal voltage at the current charge (battery OCV / capacitor V).
  [[nodiscard]] double volts() const;

  // --- Cumulative accounting (audited by check::InvariantMonitor) ----------
  [[nodiscard]] double total_draw_requested() const { return requested_; }
  [[nodiscard]] double total_drawn() const { return drawn_; }
  [[nodiscard]] double total_income() const { return income_; }
  [[nodiscard]] double total_stored() const { return stored_; }
  [[nodiscard]] double total_overflow() const { return overflow_; }

  [[nodiscard]] const StorageParams& params() const { return params_; }

 private:
  [[nodiscard]] double cutoff_joules() const;
  [[nodiscard]] double joules_at_volts(double volts) const;

  StorageParams params_;
  double capacity_joules_{0.0};
  double remaining_joules_{0.0};
  double initial_joules_{0.0};
  double requested_{0.0};
  double drawn_{0.0};
  double income_{0.0};
  double stored_{0.0};
  double overflow_{0.0};
};

/// Lifetime projection from a full store: hours until depletion at a
/// constant net load of `node_watts - harvest_watts` (battery kind applies
/// the Peukert derate; capacitor kind is linear).  Infinite when the net
/// load is non-positive.
[[nodiscard]] double projected_hours(const StorageParams& params,
                                     double node_watts, double harvest_watts);

}  // namespace bansim::hw
