// Quantifies what a fault campaign did to a BAN cell.
//
// A campaign by itself only produces raw counters; the number the survey
// comparisons need is the *difference* against the same cell run fault-free
// from the same seed.  DegradationReport::build() takes both runs as plain
// per-node outcome rows (the core campaign runner fills them in) and
// distils: packet delivery ratio, the distributions of time-to-resync and
// time-to-rejoin, and the recovery-energy overhead — the extra energy per
// delivered payload that fault recovery (resync listens, re-association
// handshakes, retransmissions) cost relative to the undisturbed baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bansim::fault {

/// One node's raw campaign outcome (either run).
struct NodeOutcome {
  std::string node;
  std::uint64_t payloads_generated{0};
  std::uint64_t payloads_delivered{0};  ///< counted at the base station
  double energy_joules{0.0};
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
  std::uint64_t resyncs{0};
  std::vector<sim::Duration> resync_times;
  std::vector<sim::Duration> rejoin_times;
};

/// One complete run of a cell (faulted campaign or fault-free baseline).
struct CampaignRun {
  sim::Duration duration{sim::Duration::zero()};
  std::vector<NodeOutcome> nodes;

  [[nodiscard]] std::uint64_t generated() const;
  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] double energy_joules() const;
  [[nodiscard]] double pdr() const;  ///< delivered / generated (1 if none)
};

/// Summary of a latency sample set (empty set renders as n=0).
struct LatencyStats {
  std::size_t n{0};
  sim::Duration mean{sim::Duration::zero()};
  sim::Duration p50{sim::Duration::zero()};
  sim::Duration max{sim::Duration::zero()};

  [[nodiscard]] static LatencyStats from(std::vector<sim::Duration> samples);
};

struct DegradationReport {
  double faulted_pdr{1.0};
  double baseline_pdr{1.0};
  std::uint64_t faulted_delivered{0};
  std::uint64_t baseline_delivered{0};
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
  std::uint64_t resyncs{0};
  LatencyStats resync{};
  LatencyStats rejoin{};
  double faulted_joules{0.0};
  double baseline_joules{0.0};
  /// Extra millijoules spent per *delivered* payload relative to baseline:
  /// the cost of recovery, retransmission and wasted listening.  This is
  /// the number the static-vs-dynamic TDMA comparison turns on.
  double recovery_overhead_mj_per_payload{0.0};

  [[nodiscard]] static DegradationReport build(const CampaignRun& faulted,
                                               const CampaignRun& baseline);

  /// Human-readable table for bansim_cli.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace bansim::fault
