#include "fault/fault_injector.hpp"

#include <algorithm>

#include "sim/trace.hpp"

namespace bansim::fault {

namespace {
hw::BatteryParams brownout_cell(const BrownoutParams& p) {
  hw::BatteryParams cell;
  cell.capacity_mah = p.capacity_mah;
  return cell;
}
}  // namespace

FaultInjector::FaultInjector(sim::SimContext& context, const FaultPlan& plan)
    : context_{context}, plan_{plan},
      fade_rng_{sim::Rng::stream(context.seed(), "fault/fade")},
      crash_rng_{sim::Rng::stream(context.seed(), "fault/crash")} {}

void FaultInjector::add_node(mac::NodeMacBase& mac, hw::Board& board) {
  NodeRec rec{&mac, &board, hw::Battery{brownout_cell(plan_.brownout)}, 0.0,
              false};
  nodes_.push_back(std::move(rec));
}

void FaultInjector::reset(const FaultPlan& plan) {
  plan_ = plan;
  fade_rng_ = sim::Rng::stream(context_.seed(), "fault/fade");
  crash_rng_ = sim::Rng::stream(context_.seed(), "fault/crash");
  for (NodeRec& rec : nodes_) {
    rec.battery = hw::Battery{brownout_cell(plan_.brownout)};
    rec.drawn_joules = 0.0;
    rec.dead = false;
  }
  fade_bad_ = false;
  stopped_ = false;
  started_ = false;
  stats_ = FaultInjectorStats{};
}

double FaultInjector::board_joules(const NodeRec& rec) const {
  double total = 0.0;
  for (const auto& c : rec.board->breakdown(context_.simulator.now())) {
    total += c.joules;
  }
  return total;
}

bool FaultInjector::interferer_burst_now() const {
  const sim::Duration since = context_.simulator.now().since_epoch();
  return since.mod(plan_.interferer.period) < plan_.interferer.burst;
}

double FaultInjector::composed_fer(const phy::LinkModel* link_model,
                                   std::uint32_t tx, std::uint32_t rx,
                                   std::size_t bytes) const {
  double extra_loss_db = 0.0;
  double pass = 1.0;  // probability of surviving every direct-FER impairment
  if (plan_.fade.enabled && fade_bad_) {
    extra_loss_db += plan_.fade.extra_loss_db;
    pass *= 1.0 - plan_.fade.fer;
  }
  if (plan_.interferer.enabled && interferer_burst_now()) {
    pass *= 1.0 - plan_.interferer.fer;
  }
  const sim::TimePoint now = context_.simulator.now();
  for (const ShadowEpisode& ep : plan_.episodes) {
    if (now < ep.start || now >= ep.start + ep.duration) continue;
    if (ep.node != 0 && ep.node != tx && ep.node != rx) continue;
    extra_loss_db += ep.extra_loss_db;
    pass *= 1.0 - ep.fer;
  }
  if (link_model != nullptr) {
    pass *= 1.0 - link_model->frame_error_rate(tx, rx, bytes, extra_loss_db);
  }
  return std::clamp(1.0 - pass, 0.0, 1.0);
}

void FaultInjector::install_error_model(phy::Channel& channel,
                                        const phy::LinkModel* link_model) {
  channel.set_error_model(
      [this, link_model](std::uint32_t tx, std::uint32_t rx,
                         std::size_t bytes) {
        return composed_fer(link_model, tx, rx, bytes);
      },
      sim::Rng::stream(context_.seed(), "channel/ber"));
}

void FaultInjector::start() {
  if (started_) return;
  started_ = true;
  stopped_ = false;

  if (plan_.fade.enabled) {
    context_.simulator.schedule_in(plan_.fade.step, [this] { step_fade(); });
  }
  if (plan_.crashes.enabled && !nodes_.empty()) {
    context_.simulator.schedule_in(plan_.crashes.check,
                                   [this] { step_crash_churn(); });
  }
  if (plan_.brownout.enabled && !nodes_.empty()) {
    // Baseline: energy spent before start() was paid by the bench supply.
    for (NodeRec& rec : nodes_) rec.drawn_joules = board_joules(rec);
    context_.simulator.schedule_in(plan_.brownout.check,
                                   [this] { step_brownout(); });
  }
  for (const FaultEvent& event : plan_.events) {
    context_.simulator.schedule_at(event.at,
                                   [this, event] { fire_event(event); });
  }
}

void FaultInjector::stop() { stopped_ = true; }

void FaultInjector::step_fade() {
  if (stopped_) return;
  const double flip = fade_bad_ ? plan_.fade.p_exit : plan_.fade.p_enter;
  if (fade_rng_.chance(flip)) {
    fade_bad_ = !fade_bad_;
    ++stats_.fade_transitions;
    context_.tracer.emit(context_.simulator.now(),
                         sim::TraceCategory::kChannel, sim::TraceNodeId{0},
                         [&](sim::TraceMessage& m) {
                           m << "fade -> " << (fade_bad_ ? "BAD" : "good");
                         });
  }
  context_.simulator.schedule_in(plan_.fade.step, [this] { step_fade(); });
}

void FaultInjector::step_crash_churn() {
  if (stopped_) return;
  const double check_s = plan_.crashes.check.to_seconds();
  const double p = std::min(1.0, plan_.crashes.rate_hz * check_s);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // One draw per node per check regardless of state, so the stream stays
    // aligned however the cell happens to be faring.
    const bool hit = crash_rng_.chance(p);
    NodeRec& rec = nodes_[i];
    if (!hit || rec.dead || rec.mac->crashed()) continue;
    const double down_s = crash_rng_.uniform(plan_.crashes.min_down.to_seconds(),
                                             plan_.crashes.max_down.to_seconds());
    ++stats_.stochastic_crashes;
    rec.mac->crash();
    context_.simulator.schedule_in(
        sim::Duration::from_seconds(down_s), [this, i] {
          if (!nodes_[i].dead) nodes_[i].mac->reboot();
        });
  }
  context_.simulator.schedule_in(plan_.crashes.check,
                                 [this] { step_crash_churn(); });
}

void FaultInjector::step_brownout() {
  if (stopped_) return;
  const double check_s = plan_.brownout.check.to_seconds();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRec& rec = nodes_[i];
    if (rec.dead) continue;
    const double cumulative = board_joules(rec);
    const double delta = std::max(0.0, cumulative - rec.drawn_joules);
    rec.drawn_joules = cumulative;
    rec.battery.draw(delta);
    if (rec.battery.depleted()) {
      rec.dead = true;
      ++stats_.permanent_deaths;
      if (!rec.mac->crashed()) rec.mac->crash();
      context_.tracer.emit(context_.simulator.now(),
                           sim::TraceCategory::kEnergy, sim::TraceNodeId{0},
                           [&](sim::TraceMessage& m) {
                             m << rec.board->name() << " battery flat: dead";
                           });
      continue;
    }
    // Loaded terminal voltage: linear-sag OCV minus the I*ESR drop of the
    // average draw over the sampling window.  A crashed node draws almost
    // nothing, so the terminal voltage recovers and the reboot sticks.
    const double ocv = rec.battery.open_circuit_volts();
    const double watts = delta / check_s;
    const double v_loaded = ocv - (watts / ocv) * plan_.brownout.esr_ohms;
    if (v_loaded < plan_.brownout.brownout_volts && !rec.mac->crashed()) {
      ++stats_.brownouts;
      context_.tracer.emit(context_.simulator.now(),
                           sim::TraceCategory::kEnergy, sim::TraceNodeId{0},
                           [&](sim::TraceMessage& m) {
                             m << rec.board->name() << " brown-out at "
                               << v_loaded << " V";
                           });
      rec.mac->crash();
      context_.simulator.schedule_in(plan_.brownout.recovery, [this, i] {
        if (!nodes_[i].dead) nodes_[i].mac->reboot();
      });
    }
  }
  context_.simulator.schedule_in(plan_.brownout.check,
                                 [this] { step_brownout(); });
}

void FaultInjector::fire_event(const FaultEvent& event) {
  if (event.node == 0 || event.node > nodes_.size()) return;
  NodeRec& rec = nodes_[event.node - 1];
  ++stats_.scripted_faults;
  context_.tracer.emit(context_.simulator.now(), sim::TraceCategory::kKernel,
                       sim::TraceNodeId{0}, [&](sim::TraceMessage& m) {
                         m << "inject " << to_string(event.kind) << " on "
                           << rec.board->name();
                       });
  switch (event.kind) {
    case FaultKind::kCrash: {
      if (rec.dead || rec.mac->crashed()) return;
      const std::size_t i = event.node - 1;
      rec.mac->crash();
      context_.simulator.schedule_in(event.down, [this, i] {
        if (!nodes_[i].dead) nodes_[i].mac->reboot();
      });
      break;
    }
    case FaultKind::kRadioLockup:
      rec.board->radio().force_lockup();
      break;
    case FaultKind::kSkewStep:
      rec.board->mcu().set_clock_skew(rec.board->mcu().clock_skew() +
                                      event.skew_delta);
      break;
  }
}

}  // namespace bansim::fault
