// Executes a FaultPlan against a running BAN cell.
//
// The injector owns no protocol state of its own: it perturbs the stack
// only through the same surfaces real faults use — the channel's frame
// error probability (fading, interference, shadowing), the MAC's hard
// crash()/reboot() interface (node churn, brown-out), the radio chip's
// lock-up latch, and the MCU's DCO skew.  All stochastic decisions draw
// from named streams ("fault/fade", "fault/crash") of the experiment seed
// and all recurring processes ride the simulator's own event queue, so a
// campaign replays bit-identically from its (seed, plan) pair, serial or
// parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "hw/battery.hpp"
#include "hw/board.hpp"
#include "mac/mac_base.hpp"
#include "phy/channel.hpp"
#include "phy/link_model.hpp"
#include "sim/context.hpp"
#include "sim/rng.hpp"

namespace bansim::fault {

struct FaultInjectorStats {
  std::uint64_t fade_transitions{0};   ///< Gilbert-Elliott state flips
  std::uint64_t scripted_faults{0};    ///< FaultEvent entries fired
  std::uint64_t stochastic_crashes{0}; ///< CrashProcess crashes
  std::uint64_t brownouts{0};          ///< brown-out crashes
  std::uint64_t permanent_deaths{0};   ///< batteries that went flat
};

class FaultInjector {
 public:
  FaultInjector(sim::SimContext& context, const FaultPlan& plan);

  /// Registers one sensor node, in roster order: the first call describes
  /// the node with channel id 1 — the id FaultPlan clauses call "node 1".
  void add_node(mac::NodeMacBase& mac, hw::Board& board);

  /// Replaces the channel's frame-error model with the composition of the
  /// plan's impairments over the base model: `link_model` (nullable) with
  /// the momentary extra path loss folded into its SNR, then the direct
  /// frame-error floors of fade / interferer / shadow episodes, combined as
  /// independent corruption chances: total = 1 - prod(1 - p_i).
  void install_error_model(phy::Channel& channel,
                           const phy::LinkModel* link_model);

  /// Arms every process of the plan (call once, after add_node calls, just
  /// before the cell starts running).
  void start();

  /// Stops the recurring processes (fade chain, crash churn, brown-out
  /// sampling) re-arming themselves, letting the event set drain.  Already
  /// scheduled reboots still fire, so crashed nodes come back.
  void stop();

  /// Restores freshly-constructed state for a new (same-activeness) plan,
  /// keeping the node registrations and any installed error model.  Call
  /// after the SimContext was reset so the fade/crash streams re-derive
  /// from the run's new seed; start() arms the new plan.
  void reset(const FaultPlan& plan);

  [[nodiscard]] bool fading_now() const { return fade_bad_; }
  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }

 private:
  struct NodeRec {
    mac::NodeMacBase* mac{nullptr};
    hw::Board* board{nullptr};
    hw::Battery battery;
    double drawn_joules{0.0};  ///< board energy already charged to the cell
    bool dead{false};          ///< battery flat: never reboots again
  };

  void step_fade();
  void step_crash_churn();
  void step_brownout();
  void fire_event(const FaultEvent& event);

  [[nodiscard]] double composed_fer(const phy::LinkModel* link_model,
                                    std::uint32_t tx, std::uint32_t rx,
                                    std::size_t bytes) const;
  [[nodiscard]] double board_joules(const NodeRec& rec) const;
  [[nodiscard]] bool interferer_burst_now() const;

  sim::SimContext& context_;
  FaultPlan plan_;
  std::vector<NodeRec> nodes_;
  sim::Rng fade_rng_;
  sim::Rng crash_rng_;
  bool fade_bad_{false};
  bool stopped_{false};
  bool started_{false};
  FaultInjectorStats stats_;
};

}  // namespace bansim::fault
