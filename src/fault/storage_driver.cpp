#include "fault/storage_driver.hpp"

#include <algorithm>

#include "sim/trace.hpp"

namespace bansim::fault {

StorageDriver::StorageDriver(sim::SimContext& context) : context_{context} {}

void StorageDriver::add_node(mac::NodeMacBase& mac, hw::Board& board,
                             hw::EnergyStore& store) {
  NodeRec rec;
  rec.mac = &mac;
  rec.board = &board;
  rec.store = &store;
  nodes_.push_back(rec);
}

double StorageDriver::board_joules(const NodeRec& rec) const {
  double total = 0.0;
  for (const auto& c : rec.board->breakdown(context_.simulator.now())) {
    total += c.joules;
  }
  return total;
}

void StorageDriver::start() {
  if (started_) return;
  started_ = true;
  stopped_ = false;
  const sim::TimePoint now = context_.simulator.now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeRec& rec = nodes_[i];
    // Energy spent before start() was paid by the bench supply.
    rec.baseline_joules = board_joules(rec);
    rec.sampled_joules = rec.baseline_joules;
    rec.last_sample = now;
    context_.simulator.schedule_in(rec.store->params().check,
                                   [this, i] { step(i); });
  }
}

void StorageDriver::stop() { stopped_ = true; }

void StorageDriver::reset() {
  for (NodeRec& rec : nodes_) {
    rec.baseline_joules = 0.0;
    rec.sampled_joules = 0.0;
    rec.last_sample = sim::TimePoint{};
    rec.dead = false;
    rec.died_at = sim::TimePoint{};
    rec.deaths = 0;
  }
  started_ = false;
  stopped_ = false;
  first_death_ = sim::TimePoint::max();
  stats_ = StorageDriverStats{};
}

void StorageDriver::step(std::size_t i) {
  if (stopped_) return;
  NodeRec& rec = nodes_[i];
  const sim::TimePoint now = context_.simulator.now();

  // Charge the metered delta to the store.  Dead nodes keep being sampled —
  // sleep leakage still meters — so the books close at the final audit.
  const double cumulative = board_joules(rec);
  const double delta = std::max(0.0, cumulative - rec.sampled_joules);
  rec.sampled_joules = cumulative;
  rec.store->draw(delta);

  const hw::StorageParams& params = rec.store->params();
  if (params.harvest.enabled) {
    rec.store->charge(params.harvest.energy_between(rec.last_sample, now));
  }
  rec.last_sample = now;

  if (!rec.dead && rec.store->depleted()) {
    rec.dead = true;
    rec.died_at = now;
    ++rec.deaths;
    ++stats_.depletion_deaths;
    first_death_ = std::min(first_death_, now);
    if (!rec.mac->crashed()) rec.mac->crash();
    context_.tracer.emit(now, sim::TraceCategory::kEnergy, sim::TraceNodeId{0},
                         [&](sim::TraceMessage& m) {
                           m << rec.board->name() << " store dry at "
                             << rec.store->volts() << " V: down";
                         });
  } else if (rec.dead) {
    if (rec.store->can_power_on()) {
      // Harvest lifted a capacitor store back past the turn-on threshold.
      rec.dead = false;
      ++stats_.recharge_reboots;
      if (rec.mac->crashed()) rec.mac->reboot();
      context_.tracer.emit(now, sim::TraceCategory::kEnergy,
                           sim::TraceNodeId{0}, [&](sim::TraceMessage& m) {
                             m << rec.board->name() << " recharged to "
                               << rec.store->volts() << " V: boot";
                           });
    } else if (!rec.mac->crashed()) {
      // A fault-injector reboot (scheduled before we declared the store
      // dead) revived the node without power.  Put it back down; this is
      // not a new depletion.
      ++stats_.zombie_recrashes;
      rec.mac->crash();
    }
  }

  context_.simulator.schedule_in(params.check, [this, i] { step(i); });
}

std::vector<NodeStorageStatus> StorageDriver::status() const {
  std::vector<NodeStorageStatus> out;
  out.reserve(nodes_.size());
  for (const NodeRec& rec : nodes_) {
    NodeStorageStatus s;
    s.node = rec.board->name();
    s.dead = rec.dead;
    s.died_at = rec.died_at;
    s.deaths = rec.deaths;
    s.requested_joules = rec.store->total_draw_requested();
    s.drawn_joules = rec.store->total_drawn();
    s.income_joules = rec.store->total_income();
    s.stored_joules = rec.store->total_stored();
    s.overflow_joules = rec.store->total_overflow();
    s.remaining_joules = rec.store->remaining_joules();
    s.initial_joules = rec.store->initial_joules();
    s.capacity_joules = rec.store->capacity_joules();
    s.state_of_charge = rec.store->state_of_charge();
    s.sampled_joules = rec.sampled_joules;
    s.baseline_joules = rec.baseline_joules;
    out.push_back(std::move(s));
  }
  return out;
}

sim::TimePoint StorageDriver::first_death() const { return first_death_; }

}  // namespace bansim::fault
