// Drives each node's EnergyStore live from its metered consumption.
//
// The driver is the online counterpart of the post-hoc lifetime math: at a
// fixed per-node cadence it samples the board's cumulative energy
// breakdown, charges the delta to the node's hw::EnergyStore, integrates
// the analytic harvest profile over the same window, and routes depletion
// through the MAC's crash()/reboot() fault interface — a node that runs
// its store dry dies exactly like a crashed one (same resync/rejoin
// bookkeeping, same recovery hardening).  Battery depletion is permanent;
// a capacitor-backed node boots again once harvest lifts the voltage to
// the turn-on threshold.
//
// Everything here is deterministic: no RNG streams, only the simulator's
// event queue and the stores' pure arithmetic, so a storage campaign
// replays bit-identically from its config, serial or parallel.  Dead nodes
// keep being sampled (sleep leakage still meters) so the energy books
// close; check::InvariantMonitor audits the closure through status().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/board.hpp"
#include "hw/energy_store.hpp"
#include "mac/mac_base.hpp"
#include "sim/context.hpp"

namespace bansim::fault {

struct StorageDriverStats {
  std::uint64_t depletion_deaths{0};   ///< stores that ran dry
  std::uint64_t recharge_reboots{0};   ///< capacitor nodes that came back
  std::uint64_t zombie_recrashes{0};   ///< foreign reboots of a dead node undone
};

/// Snapshot of one node's storage accounting (for monitors and reports).
struct NodeStorageStatus {
  std::string node;            ///< board name
  bool dead{false};
  sim::TimePoint died_at{};    ///< last depletion instant (valid when dead
                               ///< or deaths > 0)
  std::uint64_t deaths{0};     ///< times this node's store went dry
  double requested_joules{0};  ///< metered draw handed to the store
  double drawn_joules{0};      ///< portion the store could supply
  double income_joules{0};     ///< harvest profile integral
  double stored_joules{0};     ///< harvest the store absorbed
  double overflow_joules{0};   ///< harvest clamped off at full
  double remaining_joules{0};
  double initial_joules{0};
  double capacity_joules{0};
  double state_of_charge{0};
  double sampled_joules{0};    ///< cumulative board meter at last sample
  double baseline_joules{0};   ///< board meter when the driver started
};

class StorageDriver {
 public:
  explicit StorageDriver(sim::SimContext& context);

  /// Registers one sensor node, in roster order.  The store is owned by
  /// the node's stack and must outlive the driver.
  void add_node(mac::NodeMacBase& mac, hw::Board& board, hw::EnergyStore& store);

  /// Records the bench-supply baselines and arms the per-node sampling
  /// events (call once, after add_node calls, when the cell starts).
  void start();

  /// Stops the sampling events re-arming themselves so the queue drains.
  void stop();

  /// Restores freshly-constructed accounting, keeping node registrations.
  /// The stores themselves are reset by their owning stacks; start() takes
  /// fresh baselines.
  void reset();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const StorageDriverStats& stats() const { return stats_; }

  /// Accounting snapshot per node, in roster order.
  [[nodiscard]] std::vector<NodeStorageStatus> status() const;

  /// Earliest depletion instant, or TimePoint::max() when every store is
  /// still above its cutoff.
  [[nodiscard]] sim::TimePoint first_death() const;

 private:
  struct NodeRec {
    mac::NodeMacBase* mac{nullptr};
    hw::Board* board{nullptr};
    hw::EnergyStore* store{nullptr};
    double baseline_joules{0.0};  ///< paid by the bench supply pre-start
    double sampled_joules{0.0};   ///< cumulative meter at last sample
    sim::TimePoint last_sample{};
    bool dead{false};
    sim::TimePoint died_at{};
    std::uint64_t deaths{0};
  };

  void step(std::size_t i);
  [[nodiscard]] double board_joules(const NodeRec& rec) const;

  sim::SimContext& context_;
  std::vector<NodeRec> nodes_;
  bool started_{false};
  bool stopped_{false};
  sim::TimePoint first_death_{sim::TimePoint::max()};
  StorageDriverStats stats_;
};

}  // namespace bansim::fault
