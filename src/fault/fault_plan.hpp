// Declarative description of one fault-injection campaign.
//
// The paper motivates the simulator for "different working conditions,
// applications and topologies of BANs"; the WBAN MAC surveys it builds on
// (arXiv:1208.2351, arXiv:1004.3890) name body-movement burst fading and
// node churn as the dominant real-world stressors of TDMA BANs.  A
// FaultPlan captures exactly those stressors as data: time-varying channel
// impairments (a Gilbert-Elliott burst-fade process, timed shadowing
// episodes, a periodic 2.4 GHz interferer) and node faults (scripted and
// stochastic crash/reboot, battery brown-out, receiver lock-up, clock-skew
// steps).  The plan is a plain value — parsed from [fault.*] INI sections
// by core::config_io, carried inside core::BanConfig, and executed by
// fault::FaultInjector.  Everything it does is driven by named RNG streams
// of the experiment seed, so a campaign is exactly as deterministic and
// replayable as a fault-free run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bansim::fault {

/// Two-state Gilbert-Elliott burst-fade process over the whole medium
/// (body movement shadows every on-body link at once).  The chain is
/// stepped every `step`; in the bad state every link suffers
/// `extra_loss_db` of attenuation (link-model runs) and at least `fer`
/// frame error probability (with or without the link model).
struct FadeParams {
  bool enabled{false};
  double p_enter{0.02};  ///< per-step good -> bad probability
  double p_exit{0.30};   ///< per-step bad -> good probability
  sim::Duration step{sim::Duration::milliseconds(5)};
  double extra_loss_db{12.0};
  double fer{0.0};
};

/// Periodic co-channel interferer (a duty-cycled 2.4 GHz neighbour such as
/// a Wi-Fi beacon): while the burst is on, every frame is corrupted with
/// probability `fer` on top of everything else.
struct InterfererParams {
  bool enabled{false};
  sim::Duration period{sim::Duration::milliseconds(102)};
  sim::Duration burst{sim::Duration::milliseconds(3)};
  double fer{0.35};
};

/// A timed shadowing episode: an arm swinging across the torso, the wearer
/// walking away from the base station.  Applies to frames whose transmitter
/// or receiver is the named node (1-based roster index; 0 = every node),
/// between `start` and `start + duration`.
struct ShadowEpisode {
  std::uint32_t node{0};
  sim::TimePoint start{};
  sim::Duration duration{sim::Duration::seconds(1)};
  double extra_loss_db{20.0};
  double fer{0.0};
};

enum class FaultKind : std::uint8_t {
  kCrash,        ///< full MAC-state loss; reboots `down` later
  kRadioLockup,  ///< receiver wedged until the node power-cycles it
  kSkewStep,     ///< DCO frequency error steps by `skew_delta`
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRadioLockup: return "radio_lockup";
    case FaultKind::kSkewStep: return "skew_step";
  }
  return "?";
}

/// One scripted node fault.
struct FaultEvent {
  FaultKind kind{FaultKind::kCrash};
  std::uint32_t node{1};  ///< 1-based roster index
  sim::TimePoint at{};
  sim::Duration down{sim::Duration::milliseconds(500)};  ///< crash only
  double skew_delta{0.0};                                ///< skew_step only
};

/// Seed-driven stochastic crash churn: every `check`, each live node
/// crashes with probability rate_hz * check, staying down a uniform draw
/// from [min_down, max_down].  Draws come from the "fault/crash" stream.
struct CrashProcess {
  bool enabled{false};
  double rate_hz{0.05};
  sim::Duration check{sim::Duration::milliseconds(250)};
  sim::Duration min_down{sim::Duration::milliseconds(200)};
  sim::Duration max_down{sim::Duration::milliseconds(1500)};
};

/// Battery brown-out: each node runs from a (deliberately small) cell whose
/// loaded terminal voltage is the linear-sag open-circuit voltage minus the
/// I*ESR drop of the node's average draw over the last `check` window.
/// Dropping under `brownout_volts` crashes the node; the lightened load
/// lets the terminal voltage recover, and the node reboots `recovery`
/// later — unless the cell is flat, which is permanent death.
struct BrownoutParams {
  bool enabled{false};
  double capacity_mah{0.01};
  double esr_ohms{25.0};
  double brownout_volts{3.6};
  sim::Duration check{sim::Duration::milliseconds(100)};
  sim::Duration recovery{sim::Duration::milliseconds(800)};
};

struct FaultPlan {
  /// Master switch: a disabled plan injects nothing and perturbs nothing —
  /// runs are bit-identical to builds that predate the fault subsystem.
  bool enabled{false};

  FadeParams fade{};
  InterfererParams interferer{};
  std::vector<ShadowEpisode> episodes{};
  std::vector<FaultEvent> events{};
  CrashProcess crashes{};
  BrownoutParams brownout{};

  /// True when the plan would actually do something.
  [[nodiscard]] bool any() const {
    return enabled &&
           (fade.enabled || interferer.enabled || !episodes.empty() ||
            !events.empty() || crashes.enabled || brownout.enabled);
  }

  /// True when any channel impairment is configured (decides whether the
  /// injector must interpose on the channel's frame-error model).
  [[nodiscard]] bool touches_channel() const {
    return enabled &&
           (fade.enabled || interferer.enabled || !episodes.empty());
  }

  /// Empty string when the plan is well-formed, else the first problem.
  /// Callers turn a non-empty result into a hard error: a campaign with a
  /// nonsense plan would still run deterministically, just not the campaign
  /// anyone meant to run.
  [[nodiscard]] std::string validate() const {
    const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (fade.enabled) {
      if (!prob(fade.p_enter) || !prob(fade.p_exit)) {
        return "fault.fade: p_enter/p_exit must be probabilities in [0, 1]";
      }
      if (!fade.step.is_positive()) return "fault.fade: step_ms must be > 0";
      if (!prob(fade.fer)) return "fault.fade: fer must be in [0, 1]";
    }
    if (interferer.enabled) {
      if (!interferer.period.is_positive() || !interferer.burst.is_positive()) {
        return "fault.interferer: period_ms and burst_ms must be > 0";
      }
      if (interferer.burst > interferer.period) {
        return "fault.interferer: burst_ms must not exceed period_ms";
      }
      if (!prob(interferer.fer)) return "fault.interferer: fer must be in [0, 1]";
    }
    for (const ShadowEpisode& ep : episodes) {
      if (!ep.duration.is_positive()) {
        return "fault.episode: duration_ms must be > 0";
      }
      if (!prob(ep.fer)) return "fault.episode: fer must be in [0, 1]";
    }
    for (const FaultEvent& ev : events) {
      if (ev.node == 0) return "fault.event: node is 1-based (0 is invalid)";
      if (ev.kind == FaultKind::kCrash && !ev.down.is_positive()) {
        return "fault.event: crash down_ms must be > 0";
      }
    }
    if (crashes.enabled) {
      if (crashes.rate_hz < 0.0) return "fault.crashes: rate_hz must be >= 0";
      if (!crashes.check.is_positive()) {
        return "fault.crashes: check_ms must be > 0";
      }
      if (!crashes.min_down.is_positive() ||
          crashes.max_down < crashes.min_down) {
        return "fault.crashes: need 0 < min_down_ms <= max_down_ms";
      }
    }
    if (brownout.enabled) {
      if (brownout.capacity_mah <= 0.0) {
        return "fault.brownout: capacity_mah must be > 0";
      }
      if (brownout.esr_ohms < 0.0) {
        return "fault.brownout: esr_ohms must be >= 0";
      }
      if (!brownout.check.is_positive() || !brownout.recovery.is_positive()) {
        return "fault.brownout: check_ms and recovery_ms must be > 0";
      }
    }
    return "";
  }
};

}  // namespace bansim::fault
