#include "fault/degradation_report.hpp"

#include <algorithm>
#include <cstdio>

namespace bansim::fault {

std::uint64_t CampaignRun::generated() const {
  std::uint64_t total = 0;
  for (const NodeOutcome& n : nodes) total += n.payloads_generated;
  return total;
}

std::uint64_t CampaignRun::delivered() const {
  std::uint64_t total = 0;
  for (const NodeOutcome& n : nodes) total += n.payloads_delivered;
  return total;
}

double CampaignRun::energy_joules() const {
  double total = 0.0;
  for (const NodeOutcome& n : nodes) total += n.energy_joules;
  return total;
}

double CampaignRun::pdr() const {
  const std::uint64_t gen = generated();
  if (gen == 0) return 1.0;
  return static_cast<double>(delivered()) / static_cast<double>(gen);
}

LatencyStats LatencyStats::from(std::vector<sim::Duration> samples) {
  LatencyStats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  std::int64_t sum_ns = 0;
  for (const sim::Duration d : samples) sum_ns += d.ticks();
  s.mean = sim::Duration::nanoseconds(sum_ns /
                                      static_cast<std::int64_t>(samples.size()));
  s.p50 = samples[samples.size() / 2];
  s.max = samples.back();
  return s;
}

DegradationReport DegradationReport::build(const CampaignRun& faulted,
                                           const CampaignRun& baseline) {
  DegradationReport r;
  r.faulted_pdr = faulted.pdr();
  r.baseline_pdr = baseline.pdr();
  r.faulted_delivered = faulted.delivered();
  r.baseline_delivered = baseline.delivered();
  r.faulted_joules = faulted.energy_joules();
  r.baseline_joules = baseline.energy_joules();

  std::vector<sim::Duration> resyncs;
  std::vector<sim::Duration> rejoins;
  for (const NodeOutcome& n : faulted.nodes) {
    r.crashes += n.crashes;
    r.reboots += n.reboots;
    r.resyncs += n.resyncs;
    resyncs.insert(resyncs.end(), n.resync_times.begin(),
                   n.resync_times.end());
    rejoins.insert(rejoins.end(), n.rejoin_times.begin(),
                   n.rejoin_times.end());
  }
  r.resync = LatencyStats::from(std::move(resyncs));
  r.rejoin = LatencyStats::from(std::move(rejoins));

  // Energy per delivered payload, faulted minus baseline.  Guard the
  // degenerate total-blackout case (nothing delivered at all).
  const double faulted_per =
      r.faulted_delivered > 0
          ? r.faulted_joules / static_cast<double>(r.faulted_delivered)
          : r.faulted_joules;
  const double baseline_per =
      r.baseline_delivered > 0
          ? r.baseline_joules / static_cast<double>(r.baseline_delivered)
          : r.baseline_joules;
  r.recovery_overhead_mj_per_payload = (faulted_per - baseline_per) * 1e3;
  return r;
}

std::string DegradationReport::to_string() const {
  char line[160];
  std::string out;
  out += "degradation report (faulted vs fault-free baseline)\n";
  std::snprintf(line, sizeof line,
                "  PDR              %7.4f  (baseline %7.4f)\n", faulted_pdr,
                baseline_pdr);
  out += line;
  std::snprintf(line, sizeof line,
                "  delivered        %7llu  (baseline %7llu)\n",
                static_cast<unsigned long long>(faulted_delivered),
                static_cast<unsigned long long>(baseline_delivered));
  out += line;
  std::snprintf(line, sizeof line,
                "  crashes/reboots  %llu/%llu, resyncs %llu\n",
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(reboots),
                static_cast<unsigned long long>(resyncs));
  out += line;
  std::snprintf(line, sizeof line,
                "  time-to-resync   n=%zu mean=%s p50=%s max=%s\n", resync.n,
                resync.mean.to_string().c_str(), resync.p50.to_string().c_str(),
                resync.max.to_string().c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "  time-to-rejoin   n=%zu mean=%s p50=%s max=%s\n", rejoin.n,
                rejoin.mean.to_string().c_str(), rejoin.p50.to_string().c_str(),
                rejoin.max.to_string().c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "  energy           %.3f mJ  (baseline %.3f mJ)\n",
                faulted_joules * 1e3, baseline_joules * 1e3);
  out += line;
  std::snprintf(line, sizeof line,
                "  recovery overhead %+.4f mJ per delivered payload\n",
                recovery_overhead_mj_per_payload);
  out += line;
  return out;
}

}  // namespace bansim::fault
