file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_scaling.dir/bench_kernel_scaling.cpp.o"
  "CMakeFiles/bench_kernel_scaling.dir/bench_kernel_scaling.cpp.o.d"
  "bench_kernel_scaling"
  "bench_kernel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
