# Empty dependencies file for bench_kernel_scaling.
# This may be replaced when dependencies are built.
