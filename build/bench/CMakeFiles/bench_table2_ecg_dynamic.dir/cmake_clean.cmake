file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ecg_dynamic.dir/bench_table2_ecg_dynamic.cpp.o"
  "CMakeFiles/bench_table2_ecg_dynamic.dir/bench_table2_ecg_dynamic.cpp.o.d"
  "bench_table2_ecg_dynamic"
  "bench_table2_ecg_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ecg_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
