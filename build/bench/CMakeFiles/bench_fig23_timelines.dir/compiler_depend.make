# Empty compiler generated dependencies file for bench_fig23_timelines.
# This may be replaced when dependencies are built.
