# Empty compiler generated dependencies file for bench_table3_rpeak_static.
# This may be replaced when dependencies are built.
