# Empty compiler generated dependencies file for bench_table4_rpeak_dynamic.
# This may be replaced when dependencies are built.
