file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_rpeak_dynamic.dir/bench_table4_rpeak_dynamic.cpp.o"
  "CMakeFiles/bench_table4_rpeak_dynamic.dir/bench_table4_rpeak_dynamic.cpp.o.d"
  "bench_table4_rpeak_dynamic"
  "bench_table4_rpeak_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_rpeak_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
