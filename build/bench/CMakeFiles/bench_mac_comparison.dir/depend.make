# Empty dependencies file for bench_mac_comparison.
# This may be replaced when dependencies are built.
