file(REMOVE_RECURSE
  "CMakeFiles/bench_mac_comparison.dir/bench_mac_comparison.cpp.o"
  "CMakeFiles/bench_mac_comparison.dir/bench_mac_comparison.cpp.o.d"
  "bench_mac_comparison"
  "bench_mac_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mac_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
