file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_baseline.dir/test_estimator_baseline.cpp.o"
  "CMakeFiles/test_estimator_baseline.dir/test_estimator_baseline.cpp.o.d"
  "test_estimator_baseline"
  "test_estimator_baseline.pdb"
  "test_estimator_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
