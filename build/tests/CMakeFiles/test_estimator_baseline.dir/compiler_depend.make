# Empty compiler generated dependencies file for test_estimator_baseline.
# This may be replaced when dependencies are built.
