file(REMOVE_RECURSE
  "CMakeFiles/test_ecg_rpeak.dir/test_ecg_rpeak.cpp.o"
  "CMakeFiles/test_ecg_rpeak.dir/test_ecg_rpeak.cpp.o.d"
  "test_ecg_rpeak"
  "test_ecg_rpeak.pdb"
  "test_ecg_rpeak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecg_rpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
