# Empty dependencies file for test_ecg_rpeak.
# This may be replaced when dependencies are built.
