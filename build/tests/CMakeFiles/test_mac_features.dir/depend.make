# Empty dependencies file for test_mac_features.
# This may be replaced when dependencies are built.
