file(REMOVE_RECURSE
  "CMakeFiles/test_mac_features.dir/test_mac_features.cpp.o"
  "CMakeFiles/test_mac_features.dir/test_mac_features.cpp.o.d"
  "test_mac_features"
  "test_mac_features.pdb"
  "test_mac_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
