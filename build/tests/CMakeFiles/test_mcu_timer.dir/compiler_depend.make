# Empty compiler generated dependencies file for test_mcu_timer.
# This may be replaced when dependencies are built.
