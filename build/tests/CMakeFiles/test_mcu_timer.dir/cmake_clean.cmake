file(REMOVE_RECURSE
  "CMakeFiles/test_mcu_timer.dir/test_mcu_timer.cpp.o"
  "CMakeFiles/test_mcu_timer.dir/test_mcu_timer.cpp.o.d"
  "test_mcu_timer"
  "test_mcu_timer.pdb"
  "test_mcu_timer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcu_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
