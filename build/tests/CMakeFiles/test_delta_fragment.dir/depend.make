# Empty dependencies file for test_delta_fragment.
# This may be replaced when dependencies are built.
