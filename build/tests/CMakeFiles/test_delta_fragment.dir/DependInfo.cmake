
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_delta_fragment.cpp" "tests/CMakeFiles/test_delta_fragment.dir/test_delta_fragment.cpp.o" "gcc" "tests/CMakeFiles/test_delta_fragment.dir/test_delta_fragment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bansim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bansim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/bansim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/bansim_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bansim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/bansim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bansim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
