file(REMOVE_RECURSE
  "CMakeFiles/test_delta_fragment.dir/test_delta_fragment.cpp.o"
  "CMakeFiles/test_delta_fragment.dir/test_delta_fragment.cpp.o.d"
  "test_delta_fragment"
  "test_delta_fragment.pdb"
  "test_delta_fragment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
