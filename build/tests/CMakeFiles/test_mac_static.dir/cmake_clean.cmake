file(REMOVE_RECURSE
  "CMakeFiles/test_mac_static.dir/test_mac_static.cpp.o"
  "CMakeFiles/test_mac_static.dir/test_mac_static.cpp.o.d"
  "test_mac_static"
  "test_mac_static.pdb"
  "test_mac_static[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
