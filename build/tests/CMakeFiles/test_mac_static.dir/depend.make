# Empty dependencies file for test_mac_static.
# This may be replaced when dependencies are built.
