# Empty compiler generated dependencies file for test_coexistence.
# This may be replaced when dependencies are built.
