file(REMOVE_RECURSE
  "CMakeFiles/test_coexistence.dir/test_coexistence.cpp.o"
  "CMakeFiles/test_coexistence.dir/test_coexistence.cpp.o.d"
  "test_coexistence"
  "test_coexistence.pdb"
  "test_coexistence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
