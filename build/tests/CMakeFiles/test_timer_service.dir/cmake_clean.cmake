file(REMOVE_RECURSE
  "CMakeFiles/test_timer_service.dir/test_timer_service.cpp.o"
  "CMakeFiles/test_timer_service.dir/test_timer_service.cpp.o.d"
  "test_timer_service"
  "test_timer_service.pdb"
  "test_timer_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
