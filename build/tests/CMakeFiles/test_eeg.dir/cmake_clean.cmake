file(REMOVE_RECURSE
  "CMakeFiles/test_eeg.dir/test_eeg.cpp.o"
  "CMakeFiles/test_eeg.dir/test_eeg.cpp.o.d"
  "test_eeg"
  "test_eeg.pdb"
  "test_eeg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
