file(REMOVE_RECURSE
  "CMakeFiles/test_msp430.dir/test_msp430.cpp.o"
  "CMakeFiles/test_msp430.dir/test_msp430.cpp.o.d"
  "test_msp430"
  "test_msp430.pdb"
  "test_msp430[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msp430.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
