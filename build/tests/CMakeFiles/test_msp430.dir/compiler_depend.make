# Empty compiler generated dependencies file for test_msp430.
# This may be replaced when dependencies are built.
