# Empty dependencies file for test_estimator_integration.
# This may be replaced when dependencies are built.
