file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_integration.dir/test_estimator_integration.cpp.o"
  "CMakeFiles/test_estimator_integration.dir/test_estimator_integration.cpp.o.d"
  "test_estimator_integration"
  "test_estimator_integration.pdb"
  "test_estimator_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
