file(REMOVE_RECURSE
  "CMakeFiles/test_radio_driver.dir/test_radio_driver.cpp.o"
  "CMakeFiles/test_radio_driver.dir/test_radio_driver.cpp.o.d"
  "test_radio_driver"
  "test_radio_driver.pdb"
  "test_radio_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
