# Empty compiler generated dependencies file for test_experiment_validation.
# This may be replaced when dependencies are built.
