file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_validation.dir/test_experiment_validation.cpp.o"
  "CMakeFiles/test_experiment_validation.dir/test_experiment_validation.cpp.o.d"
  "test_experiment_validation"
  "test_experiment_validation.pdb"
  "test_experiment_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
