file(REMOVE_RECURSE
  "CMakeFiles/test_crc_packet.dir/test_crc_packet.cpp.o"
  "CMakeFiles/test_crc_packet.dir/test_crc_packet.cpp.o.d"
  "test_crc_packet"
  "test_crc_packet.pdb"
  "test_crc_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
