# Empty dependencies file for test_crc_packet.
# This may be replaced when dependencies are built.
