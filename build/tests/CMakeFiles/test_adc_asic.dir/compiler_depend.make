# Empty compiler generated dependencies file for test_adc_asic.
# This may be replaced when dependencies are built.
