file(REMOVE_RECURSE
  "CMakeFiles/test_adc_asic.dir/test_adc_asic.cpp.o"
  "CMakeFiles/test_adc_asic.dir/test_adc_asic.cpp.o.d"
  "test_adc_asic"
  "test_adc_asic.pdb"
  "test_adc_asic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adc_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
