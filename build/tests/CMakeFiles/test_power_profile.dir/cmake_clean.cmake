file(REMOVE_RECURSE
  "CMakeFiles/test_power_profile.dir/test_power_profile.cpp.o"
  "CMakeFiles/test_power_profile.dir/test_power_profile.cpp.o.d"
  "test_power_profile"
  "test_power_profile.pdb"
  "test_power_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
