file(REMOVE_RECURSE
  "CMakeFiles/test_validation_sweep.dir/test_validation_sweep.cpp.o"
  "CMakeFiles/test_validation_sweep.dir/test_validation_sweep.cpp.o.d"
  "test_validation_sweep"
  "test_validation_sweep.pdb"
  "test_validation_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
