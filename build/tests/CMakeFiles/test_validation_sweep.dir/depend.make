# Empty dependencies file for test_validation_sweep.
# This may be replaced when dependencies are built.
