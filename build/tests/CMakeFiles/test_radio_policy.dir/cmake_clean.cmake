file(REMOVE_RECURSE
  "CMakeFiles/test_radio_policy.dir/test_radio_policy.cpp.o"
  "CMakeFiles/test_radio_policy.dir/test_radio_policy.cpp.o.d"
  "test_radio_policy"
  "test_radio_policy.pdb"
  "test_radio_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
