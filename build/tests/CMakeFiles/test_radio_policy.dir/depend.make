# Empty dependencies file for test_radio_policy.
# This may be replaced when dependencies are built.
