# Empty compiler generated dependencies file for test_msp430_extended.
# This may be replaced when dependencies are built.
