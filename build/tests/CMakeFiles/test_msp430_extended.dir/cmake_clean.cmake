file(REMOVE_RECURSE
  "CMakeFiles/test_msp430_extended.dir/test_msp430_extended.cpp.o"
  "CMakeFiles/test_msp430_extended.dir/test_msp430_extended.cpp.o.d"
  "test_msp430_extended"
  "test_msp430_extended.pdb"
  "test_msp430_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msp430_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
