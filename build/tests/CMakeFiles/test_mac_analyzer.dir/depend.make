# Empty dependencies file for test_mac_analyzer.
# This may be replaced when dependencies are built.
