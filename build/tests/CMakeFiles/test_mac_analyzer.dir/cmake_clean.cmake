file(REMOVE_RECURSE
  "CMakeFiles/test_mac_analyzer.dir/test_mac_analyzer.cpp.o"
  "CMakeFiles/test_mac_analyzer.dir/test_mac_analyzer.cpp.o.d"
  "test_mac_analyzer"
  "test_mac_analyzer.pdb"
  "test_mac_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
