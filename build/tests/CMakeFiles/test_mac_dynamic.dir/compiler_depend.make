# Empty compiler generated dependencies file for test_mac_dynamic.
# This may be replaced when dependencies are built.
