file(REMOVE_RECURSE
  "CMakeFiles/test_mac_dynamic.dir/test_mac_dynamic.cpp.o"
  "CMakeFiles/test_mac_dynamic.dir/test_mac_dynamic.cpp.o.d"
  "test_mac_dynamic"
  "test_mac_dynamic.pdb"
  "test_mac_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
