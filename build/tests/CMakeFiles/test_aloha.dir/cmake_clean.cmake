file(REMOVE_RECURSE
  "CMakeFiles/test_aloha.dir/test_aloha.cpp.o"
  "CMakeFiles/test_aloha.dir/test_aloha.cpp.o.d"
  "test_aloha"
  "test_aloha.pdb"
  "test_aloha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aloha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
