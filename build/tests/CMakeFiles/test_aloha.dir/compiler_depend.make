# Empty compiler generated dependencies file for test_aloha.
# This may be replaced when dependencies are built.
