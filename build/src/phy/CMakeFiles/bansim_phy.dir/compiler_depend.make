# Empty compiler generated dependencies file for bansim_phy.
# This may be replaced when dependencies are built.
