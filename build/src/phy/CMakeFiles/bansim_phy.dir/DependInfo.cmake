
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/air_frame.cpp" "src/phy/CMakeFiles/bansim_phy.dir/air_frame.cpp.o" "gcc" "src/phy/CMakeFiles/bansim_phy.dir/air_frame.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/bansim_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/bansim_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/link_model.cpp" "src/phy/CMakeFiles/bansim_phy.dir/link_model.cpp.o" "gcc" "src/phy/CMakeFiles/bansim_phy.dir/link_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
