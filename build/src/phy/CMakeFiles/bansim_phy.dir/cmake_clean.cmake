file(REMOVE_RECURSE
  "CMakeFiles/bansim_phy.dir/air_frame.cpp.o"
  "CMakeFiles/bansim_phy.dir/air_frame.cpp.o.d"
  "CMakeFiles/bansim_phy.dir/channel.cpp.o"
  "CMakeFiles/bansim_phy.dir/channel.cpp.o.d"
  "CMakeFiles/bansim_phy.dir/link_model.cpp.o"
  "CMakeFiles/bansim_phy.dir/link_model.cpp.o.d"
  "libbansim_phy.a"
  "libbansim_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
