file(REMOVE_RECURSE
  "libbansim_phy.a"
)
