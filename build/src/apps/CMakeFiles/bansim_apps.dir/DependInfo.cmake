
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/base_station_app.cpp" "src/apps/CMakeFiles/bansim_apps.dir/base_station_app.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/base_station_app.cpp.o.d"
  "/root/repo/src/apps/delta_codec.cpp" "src/apps/CMakeFiles/bansim_apps.dir/delta_codec.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/delta_codec.cpp.o.d"
  "/root/repo/src/apps/ecg_streaming_app.cpp" "src/apps/CMakeFiles/bansim_apps.dir/ecg_streaming_app.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/ecg_streaming_app.cpp.o.d"
  "/root/repo/src/apps/ecg_synthesizer.cpp" "src/apps/CMakeFiles/bansim_apps.dir/ecg_synthesizer.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/ecg_synthesizer.cpp.o.d"
  "/root/repo/src/apps/eeg_app.cpp" "src/apps/CMakeFiles/bansim_apps.dir/eeg_app.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/eeg_app.cpp.o.d"
  "/root/repo/src/apps/eeg_synthesizer.cpp" "src/apps/CMakeFiles/bansim_apps.dir/eeg_synthesizer.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/eeg_synthesizer.cpp.o.d"
  "/root/repo/src/apps/rpeak_app.cpp" "src/apps/CMakeFiles/bansim_apps.dir/rpeak_app.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/rpeak_app.cpp.o.d"
  "/root/repo/src/apps/rpeak_detector.cpp" "src/apps/CMakeFiles/bansim_apps.dir/rpeak_detector.cpp.o" "gcc" "src/apps/CMakeFiles/bansim_apps.dir/rpeak_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/bansim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/bansim_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bansim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
