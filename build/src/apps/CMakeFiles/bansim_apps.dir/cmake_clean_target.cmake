file(REMOVE_RECURSE
  "libbansim_apps.a"
)
