# Empty compiler generated dependencies file for bansim_apps.
# This may be replaced when dependencies are built.
