file(REMOVE_RECURSE
  "CMakeFiles/bansim_apps.dir/base_station_app.cpp.o"
  "CMakeFiles/bansim_apps.dir/base_station_app.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/delta_codec.cpp.o"
  "CMakeFiles/bansim_apps.dir/delta_codec.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/ecg_streaming_app.cpp.o"
  "CMakeFiles/bansim_apps.dir/ecg_streaming_app.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/ecg_synthesizer.cpp.o"
  "CMakeFiles/bansim_apps.dir/ecg_synthesizer.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/eeg_app.cpp.o"
  "CMakeFiles/bansim_apps.dir/eeg_app.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/eeg_synthesizer.cpp.o"
  "CMakeFiles/bansim_apps.dir/eeg_synthesizer.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/rpeak_app.cpp.o"
  "CMakeFiles/bansim_apps.dir/rpeak_app.cpp.o.d"
  "CMakeFiles/bansim_apps.dir/rpeak_detector.cpp.o"
  "CMakeFiles/bansim_apps.dir/rpeak_detector.cpp.o.d"
  "libbansim_apps.a"
  "libbansim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
