# Empty dependencies file for bansim_energy.
# This may be replaced when dependencies are built.
