file(REMOVE_RECURSE
  "libbansim_energy.a"
)
