file(REMOVE_RECURSE
  "CMakeFiles/bansim_energy.dir/energy_meter.cpp.o"
  "CMakeFiles/bansim_energy.dir/energy_meter.cpp.o.d"
  "CMakeFiles/bansim_energy.dir/energy_report.cpp.o"
  "CMakeFiles/bansim_energy.dir/energy_report.cpp.o.d"
  "CMakeFiles/bansim_energy.dir/power_trace.cpp.o"
  "CMakeFiles/bansim_energy.dir/power_trace.cpp.o.d"
  "libbansim_energy.a"
  "libbansim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
