# Empty compiler generated dependencies file for bansim_baseline.
# This may be replaced when dependencies are built.
