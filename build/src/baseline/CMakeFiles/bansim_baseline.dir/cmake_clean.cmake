file(REMOVE_RECURSE
  "CMakeFiles/bansim_baseline.dir/powertossim_estimator.cpp.o"
  "CMakeFiles/bansim_baseline.dir/powertossim_estimator.cpp.o.d"
  "libbansim_baseline.a"
  "libbansim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
