file(REMOVE_RECURSE
  "libbansim_baseline.a"
)
