file(REMOVE_RECURSE
  "CMakeFiles/bansim_net.dir/crc16.cpp.o"
  "CMakeFiles/bansim_net.dir/crc16.cpp.o.d"
  "CMakeFiles/bansim_net.dir/fragment.cpp.o"
  "CMakeFiles/bansim_net.dir/fragment.cpp.o.d"
  "CMakeFiles/bansim_net.dir/packet.cpp.o"
  "CMakeFiles/bansim_net.dir/packet.cpp.o.d"
  "libbansim_net.a"
  "libbansim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
