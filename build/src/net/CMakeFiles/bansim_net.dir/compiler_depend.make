# Empty compiler generated dependencies file for bansim_net.
# This may be replaced when dependencies are built.
