file(REMOVE_RECURSE
  "libbansim_net.a"
)
