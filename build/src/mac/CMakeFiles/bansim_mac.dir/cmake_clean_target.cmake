file(REMOVE_RECURSE
  "libbansim_mac.a"
)
