# Empty dependencies file for bansim_mac.
# This may be replaced when dependencies are built.
