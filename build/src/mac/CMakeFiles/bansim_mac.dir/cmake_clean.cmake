file(REMOVE_RECURSE
  "CMakeFiles/bansim_mac.dir/aloha_mac.cpp.o"
  "CMakeFiles/bansim_mac.dir/aloha_mac.cpp.o.d"
  "CMakeFiles/bansim_mac.dir/base_station_mac.cpp.o"
  "CMakeFiles/bansim_mac.dir/base_station_mac.cpp.o.d"
  "CMakeFiles/bansim_mac.dir/node_mac.cpp.o"
  "CMakeFiles/bansim_mac.dir/node_mac.cpp.o.d"
  "libbansim_mac.a"
  "libbansim_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
