
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aloha_mac.cpp" "src/mac/CMakeFiles/bansim_mac.dir/aloha_mac.cpp.o" "gcc" "src/mac/CMakeFiles/bansim_mac.dir/aloha_mac.cpp.o.d"
  "/root/repo/src/mac/base_station_mac.cpp" "src/mac/CMakeFiles/bansim_mac.dir/base_station_mac.cpp.o" "gcc" "src/mac/CMakeFiles/bansim_mac.dir/base_station_mac.cpp.o.d"
  "/root/repo/src/mac/node_mac.cpp" "src/mac/CMakeFiles/bansim_mac.dir/node_mac.cpp.o" "gcc" "src/mac/CMakeFiles/bansim_mac.dir/node_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/bansim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bansim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
