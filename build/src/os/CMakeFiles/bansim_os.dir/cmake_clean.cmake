file(REMOVE_RECURSE
  "CMakeFiles/bansim_os.dir/cycle_cost_model.cpp.o"
  "CMakeFiles/bansim_os.dir/cycle_cost_model.cpp.o.d"
  "CMakeFiles/bansim_os.dir/node_os.cpp.o"
  "CMakeFiles/bansim_os.dir/node_os.cpp.o.d"
  "CMakeFiles/bansim_os.dir/power_manager.cpp.o"
  "CMakeFiles/bansim_os.dir/power_manager.cpp.o.d"
  "CMakeFiles/bansim_os.dir/radio_driver.cpp.o"
  "CMakeFiles/bansim_os.dir/radio_driver.cpp.o.d"
  "CMakeFiles/bansim_os.dir/task_scheduler.cpp.o"
  "CMakeFiles/bansim_os.dir/task_scheduler.cpp.o.d"
  "CMakeFiles/bansim_os.dir/timer_service.cpp.o"
  "CMakeFiles/bansim_os.dir/timer_service.cpp.o.d"
  "libbansim_os.a"
  "libbansim_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
