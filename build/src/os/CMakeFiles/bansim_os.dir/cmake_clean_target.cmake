file(REMOVE_RECURSE
  "libbansim_os.a"
)
