# Empty compiler generated dependencies file for bansim_os.
# This may be replaced when dependencies are built.
