
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cycle_cost_model.cpp" "src/os/CMakeFiles/bansim_os.dir/cycle_cost_model.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/cycle_cost_model.cpp.o.d"
  "/root/repo/src/os/node_os.cpp" "src/os/CMakeFiles/bansim_os.dir/node_os.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/node_os.cpp.o.d"
  "/root/repo/src/os/power_manager.cpp" "src/os/CMakeFiles/bansim_os.dir/power_manager.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/power_manager.cpp.o.d"
  "/root/repo/src/os/radio_driver.cpp" "src/os/CMakeFiles/bansim_os.dir/radio_driver.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/radio_driver.cpp.o.d"
  "/root/repo/src/os/task_scheduler.cpp" "src/os/CMakeFiles/bansim_os.dir/task_scheduler.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/task_scheduler.cpp.o.d"
  "/root/repo/src/os/timer_service.cpp" "src/os/CMakeFiles/bansim_os.dir/timer_service.cpp.o" "gcc" "src/os/CMakeFiles/bansim_os.dir/timer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bansim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
