
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/adc12.cpp" "src/hw/CMakeFiles/bansim_hw.dir/adc12.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/adc12.cpp.o.d"
  "/root/repo/src/hw/battery.cpp" "src/hw/CMakeFiles/bansim_hw.dir/battery.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/battery.cpp.o.d"
  "/root/repo/src/hw/board.cpp" "src/hw/CMakeFiles/bansim_hw.dir/board.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/board.cpp.o.d"
  "/root/repo/src/hw/mcu.cpp" "src/hw/CMakeFiles/bansim_hw.dir/mcu.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/mcu.cpp.o.d"
  "/root/repo/src/hw/radio_nrf2401.cpp" "src/hw/CMakeFiles/bansim_hw.dir/radio_nrf2401.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/radio_nrf2401.cpp.o.d"
  "/root/repo/src/hw/sensor_asic.cpp" "src/hw/CMakeFiles/bansim_hw.dir/sensor_asic.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/sensor_asic.cpp.o.d"
  "/root/repo/src/hw/timer_unit.cpp" "src/hw/CMakeFiles/bansim_hw.dir/timer_unit.cpp.o" "gcc" "src/hw/CMakeFiles/bansim_hw.dir/timer_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
