# Empty compiler generated dependencies file for bansim_hw.
# This may be replaced when dependencies are built.
