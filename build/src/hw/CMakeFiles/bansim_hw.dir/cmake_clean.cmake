file(REMOVE_RECURSE
  "CMakeFiles/bansim_hw.dir/adc12.cpp.o"
  "CMakeFiles/bansim_hw.dir/adc12.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/battery.cpp.o"
  "CMakeFiles/bansim_hw.dir/battery.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/board.cpp.o"
  "CMakeFiles/bansim_hw.dir/board.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/mcu.cpp.o"
  "CMakeFiles/bansim_hw.dir/mcu.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/radio_nrf2401.cpp.o"
  "CMakeFiles/bansim_hw.dir/radio_nrf2401.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/sensor_asic.cpp.o"
  "CMakeFiles/bansim_hw.dir/sensor_asic.cpp.o.d"
  "CMakeFiles/bansim_hw.dir/timer_unit.cpp.o"
  "CMakeFiles/bansim_hw.dir/timer_unit.cpp.o.d"
  "libbansim_hw.a"
  "libbansim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
