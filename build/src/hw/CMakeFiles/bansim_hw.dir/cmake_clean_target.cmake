file(REMOVE_RECURSE
  "libbansim_hw.a"
)
