file(REMOVE_RECURSE
  "CMakeFiles/bansim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/bansim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/bansim_sim.dir/rng.cpp.o"
  "CMakeFiles/bansim_sim.dir/rng.cpp.o.d"
  "CMakeFiles/bansim_sim.dir/simulator.cpp.o"
  "CMakeFiles/bansim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/bansim_sim.dir/stats.cpp.o"
  "CMakeFiles/bansim_sim.dir/stats.cpp.o.d"
  "CMakeFiles/bansim_sim.dir/time.cpp.o"
  "CMakeFiles/bansim_sim.dir/time.cpp.o.d"
  "CMakeFiles/bansim_sim.dir/trace.cpp.o"
  "CMakeFiles/bansim_sim.dir/trace.cpp.o.d"
  "libbansim_sim.a"
  "libbansim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
