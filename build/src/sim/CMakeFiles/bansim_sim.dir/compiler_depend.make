# Empty compiler generated dependencies file for bansim_sim.
# This may be replaced when dependencies are built.
