file(REMOVE_RECURSE
  "libbansim_sim.a"
)
