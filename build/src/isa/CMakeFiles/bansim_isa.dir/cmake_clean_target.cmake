file(REMOVE_RECURSE
  "libbansim_isa.a"
)
