file(REMOVE_RECURSE
  "CMakeFiles/bansim_isa.dir/firmware.cpp.o"
  "CMakeFiles/bansim_isa.dir/firmware.cpp.o.d"
  "CMakeFiles/bansim_isa.dir/msp430_asm.cpp.o"
  "CMakeFiles/bansim_isa.dir/msp430_asm.cpp.o.d"
  "CMakeFiles/bansim_isa.dir/msp430_core.cpp.o"
  "CMakeFiles/bansim_isa.dir/msp430_core.cpp.o.d"
  "libbansim_isa.a"
  "libbansim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
