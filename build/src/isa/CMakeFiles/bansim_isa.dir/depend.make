# Empty dependencies file for bansim_isa.
# This may be replaced when dependencies are built.
