
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aloha_network.cpp" "src/core/CMakeFiles/bansim_core.dir/aloha_network.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/aloha_network.cpp.o.d"
  "/root/repo/src/core/ban_network.cpp" "src/core/CMakeFiles/bansim_core.dir/ban_network.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/ban_network.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/bansim_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/bansim_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/mac_analyzer.cpp" "src/core/CMakeFiles/bansim_core.dir/mac_analyzer.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/mac_analyzer.cpp.o.d"
  "/root/repo/src/core/multi_ban.cpp" "src/core/CMakeFiles/bansim_core.dir/multi_ban.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/multi_ban.cpp.o.d"
  "/root/repo/src/core/paper_experiments.cpp" "src/core/CMakeFiles/bansim_core.dir/paper_experiments.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/paper_experiments.cpp.o.d"
  "/root/repo/src/core/power_profile.cpp" "src/core/CMakeFiles/bansim_core.dir/power_profile.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/power_profile.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/bansim_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/bansim_core.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/bansim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/bansim_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/bansim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bansim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bansim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bansim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bansim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bansim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bansim_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
