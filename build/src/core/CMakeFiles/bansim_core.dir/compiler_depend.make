# Empty compiler generated dependencies file for bansim_core.
# This may be replaced when dependencies are built.
