file(REMOVE_RECURSE
  "libbansim_core.a"
)
