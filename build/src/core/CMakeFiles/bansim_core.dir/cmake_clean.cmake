file(REMOVE_RECURSE
  "CMakeFiles/bansim_core.dir/aloha_network.cpp.o"
  "CMakeFiles/bansim_core.dir/aloha_network.cpp.o.d"
  "CMakeFiles/bansim_core.dir/ban_network.cpp.o"
  "CMakeFiles/bansim_core.dir/ban_network.cpp.o.d"
  "CMakeFiles/bansim_core.dir/config_io.cpp.o"
  "CMakeFiles/bansim_core.dir/config_io.cpp.o.d"
  "CMakeFiles/bansim_core.dir/experiment.cpp.o"
  "CMakeFiles/bansim_core.dir/experiment.cpp.o.d"
  "CMakeFiles/bansim_core.dir/mac_analyzer.cpp.o"
  "CMakeFiles/bansim_core.dir/mac_analyzer.cpp.o.d"
  "CMakeFiles/bansim_core.dir/multi_ban.cpp.o"
  "CMakeFiles/bansim_core.dir/multi_ban.cpp.o.d"
  "CMakeFiles/bansim_core.dir/paper_experiments.cpp.o"
  "CMakeFiles/bansim_core.dir/paper_experiments.cpp.o.d"
  "CMakeFiles/bansim_core.dir/power_profile.cpp.o"
  "CMakeFiles/bansim_core.dir/power_profile.cpp.o.d"
  "CMakeFiles/bansim_core.dir/timeline.cpp.o"
  "CMakeFiles/bansim_core.dir/timeline.cpp.o.d"
  "libbansim_core.a"
  "libbansim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
