file(REMOVE_RECURSE
  "CMakeFiles/network_tuning.dir/network_tuning.cpp.o"
  "CMakeFiles/network_tuning.dir/network_tuning.cpp.o.d"
  "network_tuning"
  "network_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
