# Empty compiler generated dependencies file for network_tuning.
# This may be replaced when dependencies are built.
