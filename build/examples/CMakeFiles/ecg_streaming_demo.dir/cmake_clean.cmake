file(REMOVE_RECURSE
  "CMakeFiles/ecg_streaming_demo.dir/ecg_streaming_demo.cpp.o"
  "CMakeFiles/ecg_streaming_demo.dir/ecg_streaming_demo.cpp.o.d"
  "ecg_streaming_demo"
  "ecg_streaming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_streaming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
