# Empty dependencies file for ecg_streaming_demo.
# This may be replaced when dependencies are built.
