file(REMOVE_RECURSE
  "CMakeFiles/tdma_timeline.dir/tdma_timeline.cpp.o"
  "CMakeFiles/tdma_timeline.dir/tdma_timeline.cpp.o.d"
  "tdma_timeline"
  "tdma_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdma_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
