# Empty compiler generated dependencies file for tdma_timeline.
# This may be replaced when dependencies are built.
