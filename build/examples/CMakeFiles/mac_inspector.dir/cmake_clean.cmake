file(REMOVE_RECURSE
  "CMakeFiles/mac_inspector.dir/mac_inspector.cpp.o"
  "CMakeFiles/mac_inspector.dir/mac_inspector.cpp.o.d"
  "mac_inspector"
  "mac_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
