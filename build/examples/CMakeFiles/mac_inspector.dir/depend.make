# Empty dependencies file for mac_inspector.
# This may be replaced when dependencies are built.
