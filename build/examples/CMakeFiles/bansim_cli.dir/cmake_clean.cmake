file(REMOVE_RECURSE
  "CMakeFiles/bansim_cli.dir/bansim_cli.cpp.o"
  "CMakeFiles/bansim_cli.dir/bansim_cli.cpp.o.d"
  "bansim_cli"
  "bansim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bansim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
