# Empty dependencies file for bansim_cli.
# This may be replaced when dependencies are built.
