file(REMOVE_RECURSE
  "CMakeFiles/rpeak_demo.dir/rpeak_demo.cpp.o"
  "CMakeFiles/rpeak_demo.dir/rpeak_demo.cpp.o.d"
  "rpeak_demo"
  "rpeak_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpeak_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
