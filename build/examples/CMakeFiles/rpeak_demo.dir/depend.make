# Empty dependencies file for rpeak_demo.
# This may be replaced when dependencies are built.
