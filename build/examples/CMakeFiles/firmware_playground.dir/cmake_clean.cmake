file(REMOVE_RECURSE
  "CMakeFiles/firmware_playground.dir/firmware_playground.cpp.o"
  "CMakeFiles/firmware_playground.dir/firmware_playground.cpp.o.d"
  "firmware_playground"
  "firmware_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
