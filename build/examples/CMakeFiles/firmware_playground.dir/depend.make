# Empty dependencies file for firmware_playground.
# This may be replaced when dependencies are built.
