// TDMA protocol visualizer: renders the static (Figure 2) or dynamic
// (Figure 3) MAC timeline as ASCII — beacons, slot requests, grants and
// data slots — straight from the simulator's trace stream.
//
// usage: tdma_timeline [static|dynamic] [nodes]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/bansim.hpp"

int main(int argc, char** argv) {
  using namespace bansim;
  using sim::Duration;

  const bool dynamic = argc > 1 && std::strcmp(argv[1], "dynamic") == 0;
  const std::size_t nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  core::BanConfig config;
  config.num_nodes = nodes;
  config.app = core::AppKind::kEcgStreaming;
  if (dynamic) {
    config.tdma = mac::TdmaConfig::dynamic_plan();
    config.streaming.sample_rate_hz = 100;
  } else {
    config.tdma = mac::TdmaConfig::static_plan(
        Duration::milliseconds(60),
        static_cast<std::uint8_t>(std::max<std::size_t>(nodes, 5)));
    config.streaming.sample_rate_hz = 105;
  }
  config.stagger = Duration::milliseconds(150);

  core::BanNetwork network{config};
  auto sink = std::make_shared<sim::MemorySink>();
  network.tracer().attach(sink, {sim::TraceCategory::kMac});
  network.start();
  network.run_until(sim::TimePoint::zero() + Duration::milliseconds(900));

  std::printf("%s TDMA, %zu nodes — join phase:\n\n",
              dynamic ? "dynamic" : "static", nodes);
  core::TimelineOptions join_window;
  join_window.start = sim::TimePoint::zero();
  join_window.window = Duration::milliseconds(640);
  join_window.bin = Duration::milliseconds(4);
  std::printf("%s\n", core::render_timeline(sink->records(), join_window).c_str());

  std::printf("steady state (one character = 2 ms):\n\n");
  core::TimelineOptions steady;
  steady.start = sim::TimePoint::zero() + Duration::milliseconds(700);
  steady.window = Duration::milliseconds(200);
  steady.bin = Duration::milliseconds(2);
  std::printf("%s", core::render_timeline(sink->records(), steady).c_str());

  if (dynamic) {
    std::printf("\nfinal cycle: %s (grew by one 10 ms slot per admitted node)\n",
                network.base_station_mac().current_cycle().to_string().c_str());
  }
  return 0;
}
