// Instruction-level playground: assemble and run real MSP430 firmware on
// the ISS — the beat-detector firmware against synthetic ECG, with the
// paper's 0.6 nJ/instruction energy accounting, plus a scratch program to
// show the assembler.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/ecg_synthesizer.hpp"
#include "isa/firmware.hpp"
#include "isa/msp430_asm.hpp"
#include "isa/msp430_core.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace bansim;

  // --- 1. The beat detector firmware on 30 s of ECG ------------------------
  apps::EcgConfig ecg_cfg;
  ecg_cfg.heart_rate_bpm = 75.0;
  apps::EcgSynthesizer ecg{ecg_cfg, sim::Rng::stream(3, "playground/ecg")};
  std::vector<std::uint16_t> codes;
  const double fs = 200.0;
  for (int n = 0; n < static_cast<int>(30.0 * fs); ++n) {
    const double v = ecg.sample(sim::TimePoint::zero() +
                                sim::Duration::from_seconds(n / fs));
    codes.push_back(static_cast<std::uint16_t>(
        std::lround(std::clamp(v / 2.5, 0.0, 1.0) * 4095.0)));
  }

  const isa::firmware::RpeakRun run = isa::firmware::run_rpeak(codes);
  std::printf(
      "beat-detector firmware on the MSP430 ISS (30 s of 75 bpm ECG):\n"
      "  %zu beats detected; first few at ",
      run.beat_indices.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, run.beat_indices.size());
       ++i) {
    std::printf("%.2fs ", run.beat_indices[i] / fs);
  }
  std::printf(
      "\n  %llu instructions, %llu cycles (%.1f cycles/sample)\n"
      "  energy: %.1f uJ at 0.6 nJ/instruction — ~%.2f uJ per processed "
      "second\n\n",
      static_cast<unsigned long long>(run.instructions),
      static_cast<unsigned long long>(run.cycles),
      static_cast<double>(run.cycles) / static_cast<double>(codes.size()),
      run.energy_joules * 1e6, run.energy_joules * 1e6 / 30.0);

  // --- 2. Scratch assembly: 16-bit multiply by shift-add -------------------
  isa::Msp430Assembler assembler;
  isa::Msp430Core core;
  const auto program = assembler.assemble(R"(
    ; r4 = 123 * 321 by shift-add (the MSP430F149 way, no HW multiplier)
    mov #123, r5
    mov #321, r6
    clr r4
  mul:
    tst r6
    jz done
    bit #1, r6
    jz shift
    add r5, r4
  shift:
    add r5, r5
    rra r6
    jmp mul
  done:
    bis #0x10, sr
  )");
  core.load(0x4000, program);
  core.set_reg(isa::kSp, 0x3FFE);
  core.run(100000);
  std::printf(
      "scratch program: 123 * 321 = %u (expected %u), %llu instructions, "
      "%llu cycles\n",
      core.reg(4), 123u * 321u,
      static_cast<unsigned long long>(core.instructions()),
      static_cast<unsigned long long>(core.cycles()));

  // --- 3. Interrupt round trip ---------------------------------------------
  isa::Msp430Core irq_core;
  isa::Msp430Assembler irq_asm;
  const auto irq_program = irq_asm.assemble(R"(
    clr r4
    bis #8, sr        ; GIE
  spin:
    inc r5
    jmp spin
  isr:
    mov #0xBEEF, r4
    reti
  )");
  irq_core.load(0x4000, irq_program);
  irq_core.set_reg(isa::kSp, 0x3FFE);
  irq_core.write16(0xFFF0, irq_asm.label("isr"));
  for (int i = 0; i < 10; ++i) irq_core.step();
  irq_core.request_interrupt(0xFFF0);
  for (int i = 0; i < 4; ++i) irq_core.step();
  std::printf("interrupt demo: r4 = 0x%04X after ISR (GIE restored: %s)\n",
              irq_core.reg(4),
              irq_core.flag(isa::kSrGie) ? "yes" : "no");
  return 0;
}
