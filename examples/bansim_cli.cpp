// Command-line experiment driver.
//
// The tool a platform team would actually run: configure a scenario from
// flags and/or an INI file, execute it at one or both fidelities, and emit
// human-readable results or CSV.
//
// usage:
//   bansim_cli [--config FILE] [--app ecg_streaming|rpeak|eeg_monitoring]
//              [--variant static|dynamic] [--cycle-ms N] [--nodes N]
//              [--seconds N] [--seed N] [--fidelity ref|model|both]
//              [--analyze] [--csv] [--dump-config]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/bansim.hpp"
#include "core/config_io.hpp"
#include "core/mac_analyzer.hpp"

namespace {

using namespace bansim;
using sim::Duration;

struct CliOptions {
  std::optional<std::string> config_file;
  std::optional<std::string> app;
  std::optional<std::string> variant;
  std::optional<int> cycle_ms;
  std::optional<int> nodes;
  std::optional<std::uint64_t> seed;
  int seconds{60};
  std::string fidelity{"both"};
  bool analyze{false};
  bool csv{false};
  bool dump_config{false};
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config FILE] [--app NAME] [--variant "
               "static|dynamic]\n"
               "          [--cycle-ms N] [--nodes N] [--seconds N] [--seed N]\n"
               "          [--fidelity ref|model|both] [--analyze] [--csv] "
               "[--dump-config]\n",
               argv0);
  return 2;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* v = next();
      if (!v) return false;
      options.config_file = v;
    } else if (arg == "--app") {
      const char* v = next();
      if (!v) return false;
      options.app = v;
    } else if (arg == "--variant") {
      const char* v = next();
      if (!v) return false;
      options.variant = v;
    } else if (arg == "--cycle-ms") {
      const char* v = next();
      if (!v) return false;
      options.cycle_ms = std::atoi(v);
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      options.nodes = std::atoi(v);
    } else if (arg == "--seconds") {
      const char* v = next();
      if (!v) return false;
      options.seconds = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--fidelity") {
      const char* v = next();
      if (!v) return false;
      options.fidelity = v;
    } else if (arg == "--analyze") {
      options.analyze = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--dump-config") {
      options.dump_config = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

core::BanConfig build_config(const CliOptions& options) {
  core::BanConfig config;
  // Paper-flavoured defaults.
  config.num_nodes = 5;
  config.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;

  if (options.config_file) {
    std::ifstream file{*options.config_file};
    if (!file) {
      throw core::ConfigError("cannot open " + *options.config_file);
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    config = core::parse_config(buffer.str());
  }

  if (options.nodes) config.num_nodes = static_cast<std::size_t>(*options.nodes);
  if (options.seed) config.seed = *options.seed;
  if (options.variant) {
    config.tdma.variant = *options.variant == "dynamic"
                              ? mac::TdmaVariant::kDynamic
                              : mac::TdmaVariant::kStatic;
  }
  if (options.cycle_ms && config.tdma.variant == mac::TdmaVariant::kStatic) {
    const auto slots = config.tdma.max_slots;
    const auto keep = config.tdma;
    config.tdma = mac::TdmaConfig::static_plan(
        Duration::milliseconds(*options.cycle_ms), slots);
    config.tdma.fast_grant = keep.fast_grant;
    config.tdma.ack_data = keep.ack_data;
    config.tdma.radio_power_down = keep.radio_power_down;
  }
  if (options.app) {
    if (*options.app == "rpeak") {
      config.app = core::AppKind::kRpeak;
    } else if (*options.app == "eeg_monitoring") {
      config.app = core::AppKind::kEegMonitoring;
    } else if (*options.app == "ecg_streaming") {
      config.app = core::AppKind::kEcgStreaming;
    } else if (*options.app == "none") {
      config.app = core::AppKind::kNone;
    } else {
      throw core::ConfigError("unknown app: " + *options.app);
    }
  }
  return config;
}

void report(const char* fidelity, const core::ScenarioResult& r, bool csv) {
  if (csv) {
    std::printf("%s,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n", fidelity, r.radio_mj,
                r.mcu_mj, r.asic_mj, r.total_mj,
                static_cast<unsigned long long>(r.data_packets),
                static_cast<unsigned long long>(r.beacons_missed));
    return;
  }
  std::printf(
      "  [%s] radio %.1f mJ, uC %.1f mJ (validated total %.1f mJ), asic %.1f "
      "mJ; %llu data packets, %llu missed beacons\n",
      fidelity, r.radio_mj, r.mcu_mj, r.total_mj, r.asic_mj,
      static_cast<unsigned long long>(r.data_packets),
      static_cast<unsigned long long>(r.beacons_missed));
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_cli(argc, argv, options)) return usage(argv[0]);

  try {
    core::BanConfig config = build_config(options);
    if (options.dump_config) {
      std::printf("%s", core::serialize_config(config).c_str());
      return 0;
    }

    core::MeasurementProtocol protocol;
    protocol.measure = Duration::seconds(options.seconds);

    if (!options.csv) {
      std::printf("scenario: %s, %zu nodes, %s TDMA, %d s window, seed %llu\n",
                  to_string(config.app), config.num_nodes,
                  to_string(config.tdma.variant), options.seconds,
                  static_cast<unsigned long long>(config.seed));
    } else {
      std::printf(
          "fidelity,radio_mj,mcu_mj,asic_mj,total_mj,data_packets,"
          "beacons_missed\n");
    }

    if (options.fidelity == "ref" || options.fidelity == "both") {
      config.fidelity = core::Fidelity::kReference;
      report("reference", core::run_scenario(config, protocol), options.csv);
    }
    if (options.fidelity == "model" || options.fidelity == "both") {
      config.fidelity = core::Fidelity::kModel;
      report("model", core::run_scenario(config, protocol), options.csv);
    }

    if (options.analyze) {
      config.fidelity = core::Fidelity::kReference;
      core::BanNetwork network{config};
      auto sink = std::make_shared<sim::MemorySink>();
      network.tracer().attach(sink, {sim::TraceCategory::kMac});
      network.start();
      if (network.run_until_joined(
              Duration::seconds(1),
              sim::TimePoint::zero() + Duration::seconds(30))) {
        const sim::TimePoint t0 = network.simulator().now();
        network.run_until(t0 + Duration::seconds(options.seconds));
        std::printf("\n%s",
                    core::analyze_mac(network, sink->records(), t0).render().c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
