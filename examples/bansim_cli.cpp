// Command-line experiment driver.
//
// The tool a platform team would actually run: configure a scenario from
// flags and/or an INI file, execute it at one or both fidelities, and emit
// human-readable results or CSV.
//
// usage:
//   bansim_cli [--config FILE] [--app ecg_streaming|rpeak|eeg_monitoring]
//              [--variant static|dynamic] [--cycle-ms N] [--nodes N]
//              [--seconds N] [--seed N] [--fidelity ref|model|both]
//              [--analyze] [--csv] [--dump-config]
//              [--sweep KEY=V1,V2,... | KEY=LO..HI] [--jobs N]
//
// Sweep mode runs the configured scenario once per value of KEY (one of
// cycle-ms, nodes, seed) at each selected fidelity, fanning the runs out
// across cores (--jobs N; 0 = all cores).  Results are printed in sweep
// order regardless of the worker count — each run owns its own simulator,
// so the numbers are bit-identical to a serial sweep.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/fault_campaign.hpp"
#include "core/bansim.hpp"
#include "core/config_io.hpp"
#include "core/mac_analyzer.hpp"
#include "fault/degradation_report.hpp"
#include "sim/scenario_runner.hpp"

namespace {

using namespace bansim;
using sim::Duration;

struct CliOptions {
  std::optional<std::string> config_file;
  std::optional<std::string> fault_plan_file;
  std::optional<std::string> app;
  std::optional<std::string> protocol;
  std::optional<std::string> variant;
  std::optional<int> cycle_ms;
  std::optional<int> nodes;
  std::optional<std::uint64_t> seed;
  int seconds{60};
  std::string fidelity{"both"};
  std::optional<std::string> sweep;
  unsigned jobs{0};  ///< sweep workers; 0 = hardware_concurrency()
  bool analyze{false};
  bool csv{false};
  bool dump_config{false};
  bool lifetime{false};
  bool per_node{false};  ///< forced on when the config carries a roster
  std::size_t population{0};  ///< 0 = not a population campaign
  bool population_motion{false};
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config FILE] [--app NAME] [--variant "
               "static|dynamic]\n"
               "          [--protocol static_tdma|dynamic_tdma|aloha|csma_ca]\n"
               "          [--cycle-ms N] [--nodes N] [--seconds N] [--seed N]\n"
               "          [--fidelity ref|model|both] [--analyze] [--csv] "
               "[--dump-config]\n"
               "          [--per-node] [--sweep KEY=V1,V2,...|KEY=LO..HI] "
               "[--jobs N]\n"
               "          [--fault-plan FILE] [--lifetime]\n"
               "          [--population N] [--population-motion]\n"
               "       sweep KEY is one of: cycle-ms, nodes, seed\n"
               "       --lifetime runs a lifetime campaign on a config with "
               "an\n"
               "       enabled [storage] section: advance until the first "
               "store\n"
               "       runs dry (or --seconds pass), then print each node's\n"
               "       measured draw and extrapolated lifetime\n"
               "       --per-node prints a per-node energy table (implied by\n"
               "       a config with [node.K] roster sections)\n"
               "       --population N simulates N distinct patients (sampled\n"
               "       physiology/storage; --population-motion adds "
               "per-patient\n"
               "       shadowing episodes), reusing warmed cells across runs\n"
               "       (--jobs workers, --seconds per-patient window; --csv\n"
               "       prints the lifetime CDF)\n"
               "       --fault-plan overlays FILE's [fault.*] sections onto "
               "the\n"
               "       config, runs a fault campaign plus a fault-free "
               "baseline\n"
               "       under the invariant monitor, and prints the "
               "degradation\n"
               "       report (PDR, resync/rejoin times, recovery energy)\n",
               argv0);
  return 2;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* v = next();
      if (!v) return false;
      options.config_file = v;
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (!v) return false;
      options.fault_plan_file = v;
    } else if (arg == "--app") {
      const char* v = next();
      if (!v) return false;
      options.app = v;
    } else if (arg == "--protocol") {
      const char* v = next();
      if (!v) return false;
      options.protocol = v;
    } else if (arg == "--variant") {
      const char* v = next();
      if (!v) return false;
      options.variant = v;
    } else if (arg == "--cycle-ms") {
      const char* v = next();
      if (!v) return false;
      options.cycle_ms = std::atoi(v);
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return false;
      options.nodes = std::atoi(v);
    } else if (arg == "--seconds") {
      const char* v = next();
      if (!v) return false;
      options.seconds = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--fidelity") {
      const char* v = next();
      if (!v) return false;
      options.fidelity = v;
    } else if (arg == "--sweep") {
      const char* v = next();
      if (!v) return false;
      options.sweep = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      options.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--per-node") {
      options.per_node = true;
    } else if (arg == "--analyze") {
      options.analyze = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--dump-config") {
      options.dump_config = true;
    } else if (arg == "--lifetime") {
      options.lifetime = true;
    } else if (arg == "--population") {
      const char* v = next();
      if (!v) return false;
      options.population = std::strtoull(v, nullptr, 10);
      if (options.population == 0) return false;
    } else if (arg == "--population-motion") {
      options.population_motion = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw core::ConfigError("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

core::BanConfig build_config(const CliOptions& options) {
  core::BanConfig config;
  // Paper-flavoured defaults.
  config.num_nodes = 5;
  config.tdma = mac::TdmaConfig::static_plan(Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;

  if (options.config_file) {
    config = core::parse_config(read_file(*options.config_file));
  }
  if (options.fault_plan_file) {
    // A fault-plan file is an ordinary config INI; only its [fault.*]
    // sections are taken (the scenario itself stays whatever --config and
    // the flags say).  The same file can therefore double as a complete
    // runnable config.
    const core::BanConfig plan_cfg =
        core::parse_config(read_file(*options.fault_plan_file));
    if (!plan_cfg.fault_plan.any()) {
      throw core::ConfigError(*options.fault_plan_file +
                              " has no enabled [fault] sections");
    }
    config.fault_plan = plan_cfg.fault_plan;
  }

  if (options.nodes) config.num_nodes = static_cast<std::size_t>(*options.nodes);
  if (options.seed) config.seed = *options.seed;
  if (options.protocol) {
    core::apply_mac_protocol(config,
                             core::parse_mac_protocol(*options.protocol));
  }
  if (options.variant) {
    config.tdma.variant = core::parse_tdma_variant(*options.variant);
  }
  if (options.cycle_ms && config.tdma.variant == mac::TdmaVariant::kStatic) {
    const auto slots = config.tdma.max_slots;
    const auto keep = config.tdma;
    config.tdma = mac::TdmaConfig::static_plan(
        Duration::milliseconds(*options.cycle_ms), slots);
    config.tdma.fast_grant = keep.fast_grant;
    config.tdma.ack_data = keep.ack_data;
    config.tdma.radio_power_down = keep.radio_power_down;
  }
  if (options.app) config.app = core::parse_app_kind(*options.app);
  return config;
}

void report(const char* fidelity, const core::ScenarioResult& r, bool csv) {
  if (csv) {
    std::printf("%s,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n", fidelity, r.radio_mj,
                r.mcu_mj, r.asic_mj, r.total_mj,
                static_cast<unsigned long long>(r.data_packets),
                static_cast<unsigned long long>(r.beacons_missed));
    return;
  }
  std::printf(
      "  [%s] radio %.1f mJ, uC %.1f mJ (validated total %.1f mJ), asic %.1f "
      "mJ; %llu data packets, %llu missed beacons\n",
      fidelity, r.radio_mj, r.mcu_mj, r.total_mj, r.asic_mj,
      static_cast<unsigned long long>(r.data_packets),
      static_cast<unsigned long long>(r.beacons_missed));
}

/// Runs the scenario once per fidelity and prints one energy row per
/// device (nodes, then the base station) over the measurement window.
/// This is the heterogeneous-roster view: each row names the node's app
/// so a mixed ECG/R-peak ward reads at a glance.
int report_per_node(const core::BanConfig& base, core::Fidelity fidelity,
                    const char* fidelity_name, int seconds) {
  core::BanConfig config = base;
  config.fidelity = fidelity;
  core::BanNetwork network{config};
  network.start();
  if (!network.run_until_joined(
          Duration::seconds(1),
          sim::TimePoint::zero() + Duration::seconds(30))) {
    std::fprintf(stderr, "per-node [%s]: network failed to join\n",
                 fidelity_name);
    return 1;
  }
  const sim::TimePoint t0 = network.simulator().now();
  const std::vector<energy::NodeEnergy> before = network.energy_snapshot();
  network.run_until(t0 + Duration::seconds(seconds));
  const std::vector<energy::NodeEnergy> after = network.energy_snapshot();

  std::printf("\nper-node energy [%s], %d s window:\n", fidelity_name,
              seconds);
  for (std::size_t i = 0; i < after.size(); ++i) {
    const bool is_bs = i >= network.num_nodes();
    const char* app =
        is_bs ? "base_station" : to_string(network.node(i).app_kind());
    auto delta_mj = [&](const char* component) {
      return (after[i].component_joules(component) -
              before[i].component_joules(component)) *
             1e3;
    };
    const double total_mj =
        (after[i].total_joules() - before[i].total_joules()) * 1e3;
    std::printf("  %-10s %-16s mcu %8.3f  radio %8.3f  asic %8.3f  total "
                "%8.3f mJ\n",
                after[i].node.c_str(), app, delta_mj("mcu"), delta_mj("radio"),
                delta_mj("asic"), total_mj);
  }
  return 0;
}

struct SweepSpec {
  std::string key;                   ///< cycle-ms | nodes | seed
  std::vector<std::uint64_t> values;
};

std::optional<SweepSpec> parse_sweep(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
    return std::nullopt;
  }
  SweepSpec spec;
  spec.key = text.substr(0, eq);
  if (spec.key != "cycle-ms" && spec.key != "nodes" && spec.key != "seed") {
    return std::nullopt;
  }
  const std::string body = text.substr(eq + 1);
  const auto range = body.find("..");
  if (range != std::string::npos) {
    const std::uint64_t lo = std::strtoull(body.c_str(), nullptr, 10);
    const std::uint64_t hi =
        std::strtoull(body.c_str() + range + 2, nullptr, 10);
    if (hi < lo) return std::nullopt;
    for (std::uint64_t v = lo; v <= hi; ++v) spec.values.push_back(v);
  } else {
    std::stringstream ss{body};
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      spec.values.push_back(std::strtoull(item.c_str(), nullptr, 10));
    }
  }
  if (spec.values.empty()) return std::nullopt;
  return spec;
}

core::BanConfig apply_sweep_value(core::BanConfig config,
                                  const std::string& key, std::uint64_t value) {
  if (key == "seed") {
    config.seed = value;
  } else if (key == "nodes") {
    config.num_nodes = static_cast<std::size_t>(value);
  } else {  // cycle-ms (static TDMA only; dynamic plans own their slot size)
    const auto slots = config.tdma.max_slots;
    const auto keep = config.tdma;
    config.tdma = mac::TdmaConfig::static_plan(
        Duration::milliseconds(static_cast<std::int64_t>(value)), slots);
    config.tdma.fast_grant = keep.fast_grant;
    config.tdma.ack_data = keep.ack_data;
    config.tdma.radio_power_down = keep.radio_power_down;
  }
  return config;
}

int run_sweep(const CliOptions& options, const core::BanConfig& base,
              const core::MeasurementProtocol& protocol) {
  const auto spec = parse_sweep(*options.sweep);
  if (!spec) {
    std::fprintf(stderr, "bad --sweep spec: %s\n", options.sweep->c_str());
    return 2;
  }

  std::vector<core::Fidelity> fidelities;
  if (options.fidelity == "ref" || options.fidelity == "both") {
    fidelities.push_back(core::Fidelity::kReference);
  }
  if (options.fidelity == "model" || options.fidelity == "both") {
    fidelities.push_back(core::Fidelity::kModel);
  }

  // One scenario per (value, fidelity), index-ordered so the report below
  // is identical for any --jobs count.
  std::vector<std::function<core::ScenarioResult()>> scenarios;
  std::vector<std::pair<std::uint64_t, const char*>> labels;
  for (const std::uint64_t value : spec->values) {
    for (const core::Fidelity fidelity : fidelities) {
      core::BanConfig cfg = apply_sweep_value(base, spec->key, value);
      cfg.fidelity = fidelity;
      scenarios.push_back(
          [cfg, protocol] { return core::run_scenario(cfg, protocol); });
      labels.emplace_back(value, fidelity == core::Fidelity::kReference
                                     ? "reference"
                                     : "model");
    }
  }

  sim::ScenarioRunner runner{options.jobs};
  const auto results = runner.run(scenarios);

  std::printf(
      "%s,fidelity,radio_mj,mcu_mj,asic_mj,total_mj,data_packets,"
      "beacons_missed\n",
      spec->key.c_str());
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::ScenarioResult& r = results[i];
    events += r.events;
    std::printf("%llu,%s,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n",
                static_cast<unsigned long long>(labels[i].first),
                labels[i].second, r.radio_mj, r.mcu_mj, r.asic_mj, r.total_mj,
                static_cast<unsigned long long>(r.data_packets),
                static_cast<unsigned long long>(r.beacons_missed));
  }
  // Throughput summary to stderr so the CSV on stdout stays machine-clean.
  std::fprintf(stderr,
               "sweep: %zu scenarios, %llu kernel events, %.2f s wall "
               "(jobs=%u), %.2f Mevents/s\n",
               results.size(), static_cast<unsigned long long>(events),
               runner.last_wall_seconds(), runner.jobs(),
               static_cast<double>(events) / runner.last_wall_seconds() / 1e6);
  return 0;
}

/// Fault-campaign mode: the faulted run and a fault-free baseline from the
/// same seed, both under the invariant monitor, distilled into a
/// DegradationReport.  Non-zero exit if any invariant was violated — a
/// campaign that breaks conservation laws is a simulator bug, not a result.
int run_campaign(const CliOptions& options, const core::BanConfig& config) {
  check::CampaignOptions campaign;
  campaign.horizon = Duration::seconds(options.seconds);

  std::printf("fault campaign: %s, %zu nodes%s, %s MAC, %d s horizon, "
              "seed %llu\n",
              to_string(config.app), config.effective_nodes(),
              config.roster.empty() ? "" : " (roster)",
              mac::to_string(config.protocol()), options.seconds,
              static_cast<unsigned long long>(config.seed));

  const check::CampaignOutcome faulted = run_fault_campaign(config, campaign);

  core::BanConfig baseline_cfg = config;
  baseline_cfg.fault_plan = fault::FaultPlan{};  // bit-identical wiring
  const check::CampaignOutcome baseline =
      run_fault_campaign(baseline_cfg, campaign);

  const auto& stats = faulted.injector;
  std::printf("injected: %llu scripted faults, %llu stochastic crashes, "
              "%llu brown-outs, %llu fade transitions, %llu permanent "
              "deaths\n",
              static_cast<unsigned long long>(stats.scripted_faults),
              static_cast<unsigned long long>(stats.stochastic_crashes),
              static_cast<unsigned long long>(stats.brownouts),
              static_cast<unsigned long long>(stats.fade_transitions),
              static_cast<unsigned long long>(stats.permanent_deaths));

  const fault::DegradationReport report =
      fault::DegradationReport::build(faulted.run, baseline.run);
  std::printf("%s", report.to_string().c_str());

  const std::uint64_t violations = faulted.violations + baseline.violations;
  if (violations != 0) {
    std::fprintf(stderr, "invariant violations: %llu\n%s%s",
                 static_cast<unsigned long long>(violations),
                 faulted.violation_report.c_str(),
                 baseline.violation_report.c_str());
    return 1;
  }
  std::printf("invariants: clean (0 violations across both runs)\n");
  return 0;
}

/// Lifetime-campaign mode: advance the cell until the first store runs dry
/// (or the horizon passes), then print each node's measured average draw
/// and its extrapolated lifetime.  Non-zero exit on invariant violations.
int run_lifetime(const CliOptions& options, const core::BanConfig& config) {
  check::LifetimeCampaignOptions campaign;
  campaign.horizon = Duration::seconds(options.seconds);

  bool any_storage = config.storage.enabled;
  for (const auto& spec : config.roster) {
    if (spec.storage && spec.storage->enabled) any_storage = true;
  }
  if (!any_storage) {
    std::fprintf(stderr,
                 "note: no enabled [storage] section — every node runs off "
                 "the bench supply and never dies\n");
  }

  const check::LifetimeOutcome outcome =
      check::run_lifetime_campaign(config, campaign);

  if (options.csv) {
    std::printf("%s", outcome.report.render_csv().c_str());
  } else {
    std::printf("lifetime campaign: %s, %zu nodes%s, %s MAC, %d s horizon, "
                "seed %llu\n",
                to_string(config.app), config.effective_nodes(),
                config.roster.empty() ? "" : " (roster)",
                mac::to_string(config.protocol()), options.seconds,
                static_cast<unsigned long long>(config.seed));
    std::printf("%s", outcome.report.render().c_str());
    if (outcome.death_observed) {
      std::printf("first depletion at %.2f s simulated (%llu deaths, %llu "
                  "recharge reboots)\n",
                  outcome.first_death.to_seconds(),
                  static_cast<unsigned long long>(
                      outcome.storage.depletion_deaths),
                  static_cast<unsigned long long>(
                      outcome.storage.recharge_reboots));
    } else {
      std::printf("no depletion within the %.1f s simulated window (%llu "
                  "recharge reboots)\n",
                  outcome.simulated.to_seconds(),
                  static_cast<unsigned long long>(
                      outcome.storage.recharge_reboots));
    }
  }
  if (outcome.violations != 0) {
    std::fprintf(stderr, "invariant violations: %llu\n%s",
                 static_cast<unsigned long long>(outcome.violations),
                 outcome.violation_report.c_str());
    return 1;
  }
  return 0;
}

/// Population-campaign mode: N distinct patients over reused cells, with
/// columnar metrics and a lifetime CDF (--csv emits the CDF rows).
int run_population(const CliOptions& options, const core::BanConfig& config) {
  core::PopulationConfig population;
  population.motion = options.population_motion;

  core::PopulationCampaignOptions campaign;
  campaign.patients = options.population;
  campaign.measure = Duration::seconds(options.seconds);
  campaign.jobs = options.jobs;

  const core::PopulationGenerator generator{config, population};
  const core::PopulationCampaignResult result =
      core::run_population_campaign(generator, campaign);

  if (options.csv) {
    std::printf("%s", result.lifetime_cdf.render_csv().c_str());
  } else {
    std::printf("ward: %s, %zu nodes%s, %s MAC, %d s window per patient, "
                "seed %llu\n",
                to_string(config.app), config.effective_nodes(),
                config.roster.empty() ? "" : " (roster)",
                mac::to_string(config.protocol()), options.seconds,
                static_cast<unsigned long long>(config.seed));
    std::printf("%s", result.render().c_str());
  }
  if (result.failed_joins != 0) {
    std::fprintf(stderr, "%zu patients failed to join within the deadline\n",
                 result.failed_joins);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_cli(argc, argv, options)) return usage(argv[0]);

  try {
    core::BanConfig config = build_config(options);
    if (options.dump_config) {
      std::printf("%s", core::serialize_config(config).c_str());
      return 0;
    }

    if (options.lifetime) return run_lifetime(options, config);
    if (options.population > 0) return run_population(options, config);
    if (options.fault_plan_file) return run_campaign(options, config);

    core::MeasurementProtocol protocol;
    protocol.measure = Duration::seconds(options.seconds);

    if (options.sweep) return run_sweep(options, config, protocol);

    if (!options.csv) {
      std::printf(
          "scenario: %s, %zu nodes%s, %s MAC, %d s window, seed %llu\n",
          to_string(config.app), config.effective_nodes(),
          config.roster.empty() ? "" : " (roster)",
          mac::to_string(config.protocol()), options.seconds,
          static_cast<unsigned long long>(config.seed));
    } else {
      std::printf(
          "fidelity,radio_mj,mcu_mj,asic_mj,total_mj,data_packets,"
          "beacons_missed\n");
    }

    if (options.fidelity == "ref" || options.fidelity == "both") {
      config.fidelity = core::Fidelity::kReference;
      report("reference", core::run_scenario(config, protocol), options.csv);
    }
    if (options.fidelity == "model" || options.fidelity == "both") {
      config.fidelity = core::Fidelity::kModel;
      report("model", core::run_scenario(config, protocol), options.csv);
    }

    // A roster config describes a heterogeneous ward network, where the
    // aggregate focus-node numbers above hide the interesting structure —
    // always show the per-node table for those.
    if ((options.per_node || !config.roster.empty()) && !options.csv) {
      int rc = 0;
      if (options.fidelity == "ref" || options.fidelity == "both") {
        rc |= report_per_node(config, core::Fidelity::kReference, "reference",
                              options.seconds);
      }
      if (options.fidelity == "model" || options.fidelity == "both") {
        rc |= report_per_node(config, core::Fidelity::kModel, "model",
                              options.seconds);
      }
      if (rc != 0) return 1;
    }

    if (options.analyze) {
      config.fidelity = core::Fidelity::kReference;
      core::BanNetwork network{config};
      auto sink = std::make_shared<sim::MemorySink>();
      network.tracer().attach(sink, {sim::TraceCategory::kMac});
      network.start();
      if (network.run_until_joined(
              Duration::seconds(1),
              sim::TimePoint::zero() + Duration::seconds(30))) {
        const sim::TimePoint t0 = network.simulator().now();
        network.run_until(t0 + Duration::seconds(options.seconds));
        std::printf("\n%s",
                    core::analyze_mac(network, sink->records(), t0).render().c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
