// On-node R-peak detection scenario (paper Section 5.2): instead of
// streaming raw ECG, each node runs the beat detector locally and sends a
// 5-byte event per beat.  The demo shows the detected beat train against
// the synthetic ground truth and quantifies the energy saved versus
// streaming — the paper's Figure 4 argument, live.
#include <cmath>
#include <cstdio>

#include "core/bansim.hpp"

int main() {
  using namespace bansim;
  using sim::Duration;
  using sim::TimePoint;

  core::PaperSetup setup;

  std::printf("=== Rpeak application, 5-node BAN, static TDMA (120 ms) ===\n\n");

  core::BanConfig config =
      core::rpeak_static_config(setup, Duration::milliseconds(120));
  core::BanNetwork network{config};
  network.start();
  if (!network.run_until_joined(Duration::seconds(1),
                                TimePoint::zero() + Duration::seconds(30))) {
    std::printf("network failed to form\n");
    return 1;
  }
  const TimePoint t0 = network.simulator().now();
  network.run_until(t0 + Duration::seconds(20));

  // Ground truth vs what the base station reconstructed from node1.
  const auto truth = network.node(0).ecg().beats_until(network.simulator().now());
  std::printf("node1 ground truth: %zu beats in the observed window "
              "(75 bpm synthetic ECG)\n",
              truth.size());
  std::printf("base station reconstructed %zu beat events (2 channels):\n",
              network.base_station_app().beats().size());
  int shown = 0;
  for (const auto& [node, when] : network.base_station_app().beats()) {
    if (node != 1 || when <= t0 || shown >= 8) continue;
    double best = 1e9;
    for (const TimePoint b : truth) {
      best = std::min(best, std::abs((when - b).to_seconds()));
    }
    std::printf("  beat at t=%8.3f s (nearest true beat: %+6.1f ms)\n",
                when.to_seconds(), best * 1e3);
    ++shown;
  }

  // Energy comparison against streaming (Figure 4).
  std::printf("\ncomputing the Figure 4 comparison (four 60 s runs)...\n\n");
  const core::Figure4Result fig = core::figure4(setup);
  std::printf("%s", fig.render().c_str());

  std::printf("\nper-app detector statistics on node1:\n");
  const auto* app = network.node(0).rpeak_app();
  std::printf("  samples acquired: %llu, beats reported: %llu\n",
              static_cast<unsigned long long>(app->samples_acquired()),
              static_cast<unsigned long long>(app->beats_reported()));
  return 0;
}
