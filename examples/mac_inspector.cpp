// Protocol inspection: runs a scenario and prints the MAC analysis a
// protocol engineer tunes against — radio duty cycles, listen windows,
// wake-up rates and beacon cadence jitter — for both applications.
//
// usage: mac_inspector [streaming|rpeak] [cycle_ms] [nodes]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/bansim.hpp"
#include "core/mac_analyzer.hpp"

int main(int argc, char** argv) {
  using namespace bansim;
  using sim::Duration;

  const bool rpeak = argc > 1 && std::strcmp(argv[1], "rpeak") == 0;
  const int cycle_ms = argc > 2 ? std::atoi(argv[2]) : 60;
  const std::size_t nodes =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 5;

  core::PaperSetup setup;
  setup.static_nodes = nodes;
  core::BanConfig config =
      rpeak ? core::rpeak_static_config(setup, Duration::milliseconds(cycle_ms))
            : core::streaming_static_config(setup,
                                            Duration::milliseconds(cycle_ms));

  core::BanNetwork network{config};
  auto sink = std::make_shared<sim::MemorySink>();
  network.tracer().attach(sink, {sim::TraceCategory::kMac});

  network.start();
  if (!network.run_until_joined(Duration::seconds(1),
                                sim::TimePoint::zero() + Duration::seconds(30))) {
    std::printf("network failed to form\n");
    return 1;
  }
  const sim::TimePoint t0 = network.simulator().now();
  network.run_until(t0 + Duration::seconds(20));

  std::printf("=== %s, %zu nodes, %d ms static TDMA ===\n\n",
              rpeak ? "Rpeak" : "ECG streaming", nodes, cycle_ms);
  const core::MacAnalysis analysis =
      core::analyze_mac(network, sink->records(), t0);
  std::printf("%s\n", analysis.render().c_str());

  std::printf("channel: %llu frames, %llu collisions, %llu bit-error drops\n",
              static_cast<unsigned long long>(network.channel().frames_sent()),
              static_cast<unsigned long long>(network.channel().collisions()),
              static_cast<unsigned long long>(network.channel().bit_error_drops()));
  std::printf("\n%s", network.base_station_app().render_summary().c_str());
  return 0;
}
