// ECG streaming scenario (paper Section 5.1) in detail: forms the 5-node
// BAN, streams 2-channel ECG at 205 Hz to the base station, and reports
// what a platform engineer would ask for — delivery statistics, per-node
// energy split, the estimation-model comparison, and where every millijoule
// of the radio went.
#include <cstdio>

#include "core/bansim.hpp"
#include "core/power_profile.hpp"

int main() {
  using namespace bansim;
  using sim::Duration;

  core::PaperSetup setup;
  setup.measure = Duration::seconds(60);

  core::BanConfig config =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  config.streaming.sample_rate_hz = 205;

  std::printf("=== ECG streaming, 5-node BAN, static TDMA (30 ms cycle) ===\n\n");

  // Reference run ("what the bench ammeter would read").
  core::MeasurementProtocol protocol;
  protocol.measure = setup.measure;
  const core::ScenarioResult real = core::run_scenario(config, protocol);
  if (!real.joined) {
    std::printf("network failed to form\n");
    return 1;
  }

  // Estimation-model run (the paper's simulator).
  core::BanConfig model_cfg = config;
  model_cfg.fidelity = core::Fidelity::kModel;
  const core::ScenarioResult sim = core::run_scenario(model_cfg, protocol);

  std::printf("node1 energy over %.0f s (radio + microcontroller):\n",
              real.measured.to_seconds());
  std::printf("  %-22s %10s %10s\n", "", "Real", "Sim");
  std::printf("  %-22s %8.1f mJ %8.1f mJ\n", "radio", real.radio_mj,
              sim.radio_mj);
  std::printf("  %-22s %8.1f mJ %8.1f mJ\n", "microcontroller", real.mcu_mj,
              sim.mcu_mj);
  std::printf("  %-22s %8.1f mJ %8.1f mJ\n", "total (validated)",
              real.total_mj, sim.total_mj);
  std::printf("  %-22s %8.1f mJ  (constant 10.5 mW, excluded from validation)\n",
              "25-ch ASIC", real.asic_mj);
  std::printf("  estimation error: radio %.1f%%, uC %.1f%%\n\n",
              100.0 * std::abs(sim.radio_mj - real.radio_mj) / real.radio_mj,
              100.0 * std::abs(sim.mcu_mj - real.mcu_mj) / real.mcu_mj);

  std::printf("traffic: %llu data packets from node1 (%llu beacons heard, "
              "%llu missed)\n\n",
              static_cast<unsigned long long>(real.data_packets),
              static_cast<unsigned long long>(real.beacons_received),
              static_cast<unsigned long long>(real.beacons_missed));

  // A fresh network for the detailed per-state breakdown.
  core::BanNetwork network{config};
  network.start();
  network.run_until_joined(Duration::seconds(1),
                           sim::TimePoint::zero() + Duration::seconds(30));
  network.run_until(network.simulator().now() + Duration::seconds(10));
  std::printf("per-state energy after 10 s of steady state:\n%s\n",
              energy::render_energy_table(network.energy_snapshot()).c_str());
  std::printf("%s", network.base_station_app().render_summary().c_str());

  // A bench-supply view of node1: two TDMA cycles of instantaneous power.
  core::PowerProfileOptions profile_options;
  profile_options.window = Duration::milliseconds(60);
  profile_options.step = Duration::from_microseconds(250);
  const energy::PowerTrace trace =
      core::capture_power_profile(network, 0, profile_options);
  std::printf("\nnode1 power profile (60 ms = two cycles, %.0f uW floor, "
              "%.1f mW peak):\n",
              1e6 * [&] {
                double floor = 1e9;
                for (std::size_t i = 0; i < trace.size(); ++i) {
                  floor = std::min(floor, trace.watts_at(i));
                }
                return floor;
              }(),
              1e3 * trace.peak());
  const char* levels = " .:-=+*#%@";
  std::string sparkline;
  for (std::size_t i = 0; i < trace.size(); i += trace.size() / 120 + 1) {
    const double frac = trace.watts_at(i) / trace.peak();
    sparkline += levels[static_cast<std::size_t>(frac * 9.0)];
  }
  std::printf("  |%s|\n", sparkline.c_str());
  std::printf("  (sleep floor interrupted by the beacon listen plateau and "
              "the slot TX burst)\n");
  return 0;
}
