// Architectural tuning through simulation — the use case the paper's
// abstract promises ("tune the node architecture and communication layer
// for different working conditions, applications and topologies").
//
// Sweeps the TDMA cycle for both applications, reports node energy and the
// projected battery life on a 160 mAh Li-polymer cell (a typical body-worn
// patch battery), and prints the operating point a designer would pick for
// a given latency bound.
#include <cstdio>
#include <string_view>
#include <vector>

#include "core/bansim.hpp"

int main() {
  using namespace bansim;
  using sim::Duration;

  core::PaperSetup setup;
  setup.measure = Duration::seconds(30);
  core::MeasurementProtocol protocol;
  protocol.measure = setup.measure;

  // 160 mAh at 2.8 V nominal; the constant 10.5 mW ASIC is included here
  // because a designer sizes the battery for the whole node.
  const double battery_joules = 0.160 * 3600.0 * 2.8;

  struct Row {
    const char* app;
    int cycle_ms;
    double radio_mj;
    double mcu_mj;
    double asic_mj;
    double life_hours;
  };
  std::vector<Row> rows;

  for (const bool rpeak : {false, true}) {
    for (const int cycle_ms : {30, 60, 90, 120, 180, 240}) {
      core::BanConfig cfg =
          rpeak ? core::rpeak_static_config(setup,
                                            Duration::milliseconds(cycle_ms))
                : core::streaming_static_config(
                      setup, Duration::milliseconds(cycle_ms));
      const core::ScenarioResult r = core::run_scenario(cfg, protocol);
      if (!r.joined) continue;
      const double seconds = r.measured.to_seconds();
      const double watts =
          (r.radio_mj + r.mcu_mj + r.asic_mj) * 1e-3 / seconds;
      rows.push_back({rpeak ? "rpeak" : "streaming", cycle_ms,
                      r.radio_mj * 60.0 / seconds, r.mcu_mj * 60.0 / seconds,
                      r.asic_mj * 60.0 / seconds,
                      battery_joules / watts / 3600.0});
    }
  }

  std::printf("design-space sweep: 5-node BAN, static TDMA, 160 mAh cell\n");
  std::printf("(energies normalized to 60 s; latency bound = one TDMA cycle)\n\n");
  std::printf("%-11s %9s | %11s %11s %11s | %12s\n", "app", "cycle(ms)",
              "radio mJ/min", "uC mJ/min", "asic mJ/min", "battery life");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-11s %9d | %11.1f %11.1f %11.1f | %9.1f h\n", r.app,
                r.cycle_ms, r.radio_mj, r.mcu_mj, r.asic_mj, r.life_hours);
  }

  // The designer's question: longest battery life subject to keeping full
  // 200 Hz diagnostic sensing.  Streaming couples the sampling rate to the
  // cycle (18 B payload per cycle): only the 30 ms row samples at ~200 Hz;
  // longer streaming cycles throw away signal bandwidth.  Rpeak keeps
  // 200 Hz sensing at every cycle because only events leave the node.
  const Row* best_streaming = nullptr;
  const Row* best_rpeak = nullptr;
  for (const Row& r : rows) {
    if (std::string_view{r.app} == "streaming") {
      if (r.cycle_ms == 30) best_streaming = &r;  // the 200 Hz-capable row
    } else if (best_rpeak == nullptr || r.life_hours > best_rpeak->life_hours) {
      best_rpeak = &r;
    }
  }
  if (best_streaming != nullptr && best_rpeak != nullptr) {
    std::printf(
        "\nkeeping full ~200 Hz sensing:\n"
        "  streaming requires the 30 ms cycle  -> %.1f h\n"
        "  rpeak works at the %d ms cycle      -> %.1f h  (+%.0f%% battery "
        "life)\n",
        best_streaming->life_hours, best_rpeak->cycle_ms,
        best_rpeak->life_hours,
        100.0 * (best_rpeak->life_hours / best_streaming->life_hours - 1.0));
  }
  std::printf(
      "\n(The paper's Figure 4 argument: on-node preprocessing decouples the "
      "sensing rate\n from the radio duty cycle, which is where the energy "
      "saving comes from.)\n");
  return 0;
}
