// bansim_campaign — resumable population-campaign driver.
//
//   bansim_campaign run <dir> [options]      create (if needed) and run
//   bansim_campaign resume <dir> [options]   alias for run on an existing dir
//   bansim_campaign report <dir> [--csv FILE] [--cdf-csv FILE]
//   bansim_campaign verify <dir>
//
// run/resume options:
//   --config FILE         base ward config (INI); default ward otherwise
//   --patients N          patients per variant            (default 1000)
//   --shard-size N        patients per shard              (default 250)
//   --protocols a,b,..    static_tdma,dynamic_tdma,aloha,csma_ca
//   --seeds s1,s2,..      base seeds                      (default 1)
//   --fault-modes m,..    off,on (on enables the config's fault plan)
//   --motion              sample per-patient motion episodes
//   --measure-ms N --settle-ms N --join-deadline-ms N
//   --retry-budget N      failed attempts before a shard is quarantined
//   --deadline-floor-ms N --deadline-ceiling-ms N --deadline-factor F
//                         per-shard watchdog deadline policy (manifest)
//   --workers N           worker processes (0 = in this process)
//   --checkpoint-every N  checkpoint record cadence       (default 4)
//   --backoff-ms N        retry backoff base (doubles per attempt)
//   --worker-cpu-limit-s N --worker-mem-limit-mb N
//                         setrlimit caps applied inside each worker
//   --die-after N         chaos: SIGKILL everything after N shards
//   --stop-after N        chaos: stop cleanly after N shards
//   --worker-chaos SPEC   chaos list: "<ordinal>:<mid|torn|post|hang>"
//                         (first worker) and/or "shard=<k>:<hang|crash>"
//                         (poison shard, every worker)
//
// `run` on a directory that already holds a manifest resumes it (creation
// options are then rejected — the manifest is the definition).
//
// Exit codes:
//   0  run: campaign complete | report: aggregates complete | verify: OK
//   2  usage error, or report/resume/verify on a directory with no campaign
//   3  run returned incomplete (chaos stop / SIGTERM / worker exhaustion)
//      | report: aggregates incomplete
//   4  verify found errors
//   5  complete except quarantined: every planned shard is either durable
//      or quarantined, and at least one is quarantined (run/report/verify)
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/report.hpp"
#include "core/bansim.hpp"
#include "core/config_io.hpp"

namespace {

using namespace bansim;

[[noreturn]] void usage(const std::string& problem) {
  if (!problem.empty()) std::cerr << "error: " << problem << "\n";
  std::cerr << "usage: bansim_campaign run|resume|report|verify <dir> "
               "[options]\n       (see the header of "
               "examples/bansim_campaign.cpp)\n";
  std::exit(2);
}

[[nodiscard]] std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// The default ward when --config is not given: the paper's 5-node ECG
/// streaming cell with a small battery so lifetimes are finite.
[[nodiscard]] core::BanConfig default_ward() {
  core::BanConfig config;
  config.num_nodes = 5;
  config.tdma =
      mac::TdmaConfig::static_plan(sim::Duration::milliseconds(30), 5);
  config.app = core::AppKind::kEcgStreaming;
  config.streaming.sample_rate_hz = 205;
  config.stagger = sim::Duration::milliseconds(2);
  config.storage.enabled = true;
  config.storage.battery.capacity_mah = 25.0;  // coin cell: finite lifetimes
  return config;
}

struct CliOptions {
  std::string verb;
  std::string dir;
  std::optional<std::string> config_path;
  campaign::CampaignSpec spec;
  bool spec_touched{false};
  campaign::RunCampaignOptions run;
  std::optional<std::string> csv_path;
  std::optional<std::string> cdf_csv_path;
};

[[nodiscard]] CliOptions parse_cli(int argc, char** argv) {
  if (argc < 3) usage("need a verb and a campaign directory");
  CliOptions cli;
  cli.verb = argv[1];
  cli.dir = argv[2];
  // CLI defaults lean smaller than the library's (a CLI smoke should not
  // take minutes unless asked).
  cli.spec.patients = 1000;
  cli.spec.shard_size = 250;
  cli.spec.measure = sim::Duration::seconds(5);
  cli.spec.settle = sim::Duration::seconds(1);
  cli.run.workers = 2;

  const auto need_value = [&](int i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&](const std::string& v) {
      try {
        return std::stoul(v);
      } catch (const std::exception&) {
        usage(arg + ": bad number '" + v + "'");
      }
    };
    if (arg == "--config") {
      cli.config_path = need_value(i++);
      cli.spec_touched = true;
    } else if (arg == "--patients") {
      cli.spec.patients = num(need_value(i++));
      cli.spec_touched = true;
    } else if (arg == "--shard-size") {
      cli.spec.shard_size = num(need_value(i++));
      cli.spec_touched = true;
    } else if (arg == "--protocols") {
      cli.spec.protocols.clear();
      for (const std::string& token : split_csv(need_value(i++))) {
        cli.spec.protocols.push_back(core::parse_mac_protocol(token));
      }
      cli.spec_touched = true;
    } else if (arg == "--seeds") {
      cli.spec.seeds.clear();
      for (const std::string& token : split_csv(need_value(i++))) {
        cli.spec.seeds.push_back(num(token));
      }
      cli.spec_touched = true;
    } else if (arg == "--fault-modes") {
      cli.spec.fault_modes.clear();
      for (const std::string& token : split_csv(need_value(i++))) {
        if (token == "on") {
          cli.spec.fault_modes.push_back(true);
        } else if (token == "off") {
          cli.spec.fault_modes.push_back(false);
        } else {
          usage("--fault-modes entries must be on|off");
        }
      }
      cli.spec_touched = true;
    } else if (arg == "--motion") {
      cli.spec.motion = true;
      cli.spec_touched = true;
    } else if (arg == "--measure-ms") {
      cli.spec.measure = sim::Duration::milliseconds(
          static_cast<std::int64_t>(num(need_value(i++))));
      cli.spec_touched = true;
    } else if (arg == "--settle-ms") {
      cli.spec.settle = sim::Duration::milliseconds(
          static_cast<std::int64_t>(num(need_value(i++))));
      cli.spec_touched = true;
    } else if (arg == "--join-deadline-ms") {
      cli.spec.join_deadline = sim::Duration::milliseconds(
          static_cast<std::int64_t>(num(need_value(i++))));
      cli.spec_touched = true;
    } else if (arg == "--retry-budget") {
      cli.spec.retry_budget = num(need_value(i++));
      cli.spec_touched = true;
    } else if (arg == "--deadline-floor-ms") {
      cli.spec.deadline_floor_ms =
          static_cast<std::uint32_t>(num(need_value(i++)));
      cli.spec_touched = true;
    } else if (arg == "--deadline-ceiling-ms") {
      cli.spec.deadline_ceiling_ms =
          static_cast<std::uint32_t>(num(need_value(i++)));
      cli.spec_touched = true;
    } else if (arg == "--deadline-factor") {
      const std::string value = need_value(i++);
      try {
        std::size_t pos = 0;
        cli.spec.deadline_factor = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        usage("--deadline-factor: bad number '" + value + "'");
      }
      cli.spec_touched = true;
    } else if (arg == "--workers") {
      cli.run.workers = static_cast<unsigned>(num(need_value(i++)));
    } else if (arg == "--checkpoint-every") {
      cli.run.checkpoint_every = num(need_value(i++));
    } else if (arg == "--backoff-ms") {
      cli.run.backoff_base_ms = static_cast<std::uint32_t>(num(need_value(i++)));
    } else if (arg == "--worker-cpu-limit-s") {
      cli.run.worker_cpu_limit_s =
          static_cast<std::uint32_t>(num(need_value(i++)));
    } else if (arg == "--worker-mem-limit-mb") {
      cli.run.worker_mem_limit_mb =
          static_cast<std::uint32_t>(num(need_value(i++)));
    } else if (arg == "--die-after") {
      cli.run.die_after_shards = num(need_value(i++));
    } else if (arg == "--stop-after") {
      cli.run.stop_after_shards = num(need_value(i++));
    } else if (arg == "--worker-chaos") {
      cli.run.worker_chaos = need_value(i++);
    } else if (arg == "--csv") {
      cli.csv_path = need_value(i++);
    } else if (arg == "--cdf-csv") {
      cli.cdf_csv_path = need_value(i++);
    } else {
      usage("unknown option " + arg);
    }
  }
  return cli;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
}

[[nodiscard]] bool has_manifest(const std::string& dir) {
  return std::filesystem::exists(std::filesystem::path(dir) / "manifest.ini");
}

/// report/verify/resume on a directory without a campaign is an operator
/// mistake, not store corruption — one actionable line, exit 2, no
/// StoreError backtrace.
[[nodiscard]] int missing_campaign(const std::string& dir) {
  std::cerr << "error: no campaign at " << dir
            << " (missing manifest.ini); create one with `bansim_campaign "
               "run " << dir << " [options]`\n";
  return 2;
}

int run_verb(const CliOptions& cli) {
  if (!has_manifest(cli.dir)) {
    if (cli.verb == "resume") return missing_campaign(cli.dir);
    core::BanConfig base = default_ward();
    if (cli.config_path) {
      std::ifstream in(*cli.config_path, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read " << *cli.config_path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      base = core::parse_config(buf.str());
    }
    campaign::create_campaign(cli.dir, cli.spec, base);
    std::cout << "created campaign: " << cli.spec.patients << " patients x "
              << cli.spec.variant_count() << " variant(s), "
              << campaign::plan_shards(cli.spec).size() << " shards\n";
  } else if (cli.spec_touched) {
    std::cerr << "error: " << cli.dir
              << " already holds a manifest; scenario options only apply at "
                 "creation\n";
    return 2;
  }

  const campaign::RunCampaignResult result =
      campaign::run_campaign(cli.dir, cli.run);
  std::cout << "generation " << result.generation << ": ran "
            << result.shards_run << " shard(s), "
            << result.shards_already_complete << " already complete of "
            << result.shards_total;
  const std::size_t quarantined =
      result.shards_quarantined + result.shards_already_quarantined;
  if (quarantined != 0) {
    std::cout << ", " << quarantined << " quarantined";
  }
  if (result.workers_spawned != 0) {
    std::cout << " (" << result.workers_spawned << " worker(s), "
              << result.workers_died << " died, " << result.workers_hung
              << " hung)";
  }
  std::cout << (result.incomplete
                    ? " [INCOMPLETE]"
                    : (result.complete_except_quarantined()
                           ? " [COMPLETE EXCEPT QUARANTINED]"
                           : ""))
            << "\n";
  if (result.incomplete) return 3;
  return result.complete_except_quarantined() ? 5 : 0;
}

int report_verb(const CliOptions& cli) {
  const campaign::LoadedCampaign campaign_def = campaign::load_campaign(cli.dir);
  const campaign::CollectedResults results =
      campaign::collect_results(cli.dir);
  const campaign::CampaignAggregates aggregates =
      campaign::aggregate(campaign_def, results);
  std::cout << campaign::render_report(aggregates);
  if (cli.csv_path) write_text(*cli.csv_path, campaign::render_csv(aggregates));
  if (cli.cdf_csv_path) {
    write_text(*cli.cdf_csv_path, aggregates.lifetime_cdf.render_csv());
  }
  if (aggregates.complete()) return 0;
  return aggregates.complete_except_quarantined() ? 5 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker-mode children of `run --workers N` re-enter through this hook.
  if (const int rc = bansim::campaign::maybe_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  try {
    const CliOptions cli = parse_cli(argc, argv);
    if (cli.verb == "run" || cli.verb == "resume") return run_verb(cli);
    if (cli.verb == "report") {
      if (!has_manifest(cli.dir)) return missing_campaign(cli.dir);
      return report_verb(cli);
    }
    if (cli.verb == "verify") {
      if (!has_manifest(cli.dir)) return missing_campaign(cli.dir);
      const campaign::VerifyReport report = campaign::verify_store(cli.dir);
      std::cout << report.render();
      if (!report.ok) return 4;
      return report.shards_quarantined != 0 ? 5 : 0;
    }
    usage("unknown verb " + cli.verb);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
