// Quickstart: build the paper's 5-node BAN (ECG streaming over static
// TDMA), run it for a few seconds of simulated time, and print the energy
// breakdown of every node.
#include <cstdio>

#include "core/bansim.hpp"

int main() {
  using namespace bansim;
  using sim::Duration;

  // The paper's headline configuration: 5 ECG nodes, 30 ms static TDMA
  // cycle, 205 Hz sampling, 18-byte payload per cycle.
  core::PaperSetup setup;
  core::BanConfig config =
      core::streaming_static_config(setup, Duration::milliseconds(30));
  config.streaming.sample_rate_hz = 205;

  core::BanNetwork network{config};
  network.start();

  // Let the network form, then observe 10 s of steady state.
  const bool joined = network.run_until_joined(
      Duration::seconds(1), sim::TimePoint::zero() + Duration::seconds(30));
  if (!joined) {
    std::printf("network failed to form\n");
    return 1;
  }
  std::printf("network formed at t=%s; all %zu nodes hold a TDMA slot\n",
              network.simulator().now().to_string().c_str(),
              network.num_nodes());

  network.run_until(network.simulator().now() + Duration::seconds(10));

  std::printf("\n%s\n", energy::render_energy_table(network.energy_snapshot()).c_str());
  std::printf("%s\n", network.base_station_app().render_summary().c_str());
  std::printf("channel: %llu frames, %llu collisions\n",
              static_cast<unsigned long long>(network.channel().frames_sent()),
              static_cast<unsigned long long>(network.channel().collisions()));
  return 0;
}
