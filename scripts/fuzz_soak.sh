#!/usr/bin/env bash
# Long-running differential fuzz soak: sweeps seed chunks through
# bansim_check until interrupted (or until --chunks N chunks are done),
# stopping at the first failure — the binary has already printed the
# offending seed and its minimized config at that point.
#
# usage: scripts/fuzz_soak.sh [--start SEED] [--chunk SEEDS] [--chunks N]
#                             [--jobs N]
#
# Examples:
#   scripts/fuzz_soak.sh                       # soak forever from seed 1
#   scripts/fuzz_soak.sh --start 10000 --chunks 5
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)

start=1
chunk=500
chunks=0      # 0 = run until interrupted
jobs=0        # 0 = all hardware threads

while [[ $# -gt 0 ]]; do
  case "$1" in
    --start)  start=$2; shift 2 ;;
    --chunk)  chunk=$2; shift 2 ;;
    --chunks) chunks=$2; shift 2 ;;
    --jobs)   jobs=$2; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

cmake -B "$repo/build" -S "$repo" -DBANSIM_WARNINGS_AS_ERRORS=ON
cmake --build "$repo/build" -j "$(nproc)" --target bansim_check_cli
check="$repo/build/tests/bansim_check"

done_chunks=0
seed=$start
while :; do
  echo "== fuzz soak: seeds $seed..$((seed + chunk - 1)) =="
  if ! "$check" --start "$seed" --seeds "$chunk" --jobs "$jobs"; then
    echo "fuzz soak: FAILED in chunk starting at seed $seed (see above)" >&2
    exit 1
  fi
  seed=$((seed + chunk))
  done_chunks=$((done_chunks + 1))
  if [[ "$chunks" -gt 0 && "$done_chunks" -ge "$chunks" ]]; then
    break
  fi
done
echo "fuzz soak: OK ($done_chunks chunk(s), $((done_chunks * chunk)) seeds)"
