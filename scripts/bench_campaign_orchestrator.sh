#!/usr/bin/env bash
# Orchestrator-throughput datapoint: times the same population ward three
# ways — the resumable orchestrator in-process (workers=0, serial), the
# orchestrator over a multi-process worker pool, and the pre-existing
# bansim_cli thread-pool population campaign — and merges the
# patients-per-second numbers into BENCH_campaign.json under an
# "orchestrator" entry.  The multi-process-vs-thread-pool ratio is the
# cost of crash-durability: the process pool pays fork/exec + per-record
# store framing for the ability to be SIGKILLed and resumed.
#
# usage: scripts/bench_campaign_orchestrator.sh [label] [patients]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
label=${1:-$(git -C "$repo" rev-parse --short HEAD)}
patients=${2:-1000}

cmake -B "$repo/build-bench" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build-bench" -j "$(nproc)" \
  --target bansim_campaign_cli bansim_cli

python3 - "$repo" "$label" "$patients" <<'EOF'
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

repo, label, patients = sys.argv[1], sys.argv[2], int(sys.argv[3])
camp = os.path.join(repo, "build-bench/examples/bansim_campaign")
cli = os.path.join(repo, "build-bench/examples/bansim_cli")
config = os.path.join(repo, "examples/configs/population_ward.ini")
jobs = os.cpu_count() or 1


def timed(argv):
    start = time.monotonic()
    subprocess.run(argv, check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - start


work = tempfile.mkdtemp(prefix="bansim_orch_bench_")
try:
    spec = [camp, "run", None, "--config", config,
            "--patients", str(patients), "--shard-size", "100",
            "--measure-ms", "500"]

    spec[2] = os.path.join(work, "serial")
    serial_s = timed(spec + ["--workers", "0"])
    spec[2] = os.path.join(work, "pool")
    multiproc_s = timed(spec + ["--workers", str(max(2, jobs))])
    # The pre-orchestrator thread-pool path: same ward, same patient
    # count, ~the same simulated window (0.5 s + settle), shared-memory
    # threads instead of store-backed worker processes.
    threadpool_s = timed([cli, "--config", config, "--population",
                          str(patients), "--seconds", "1", "--jobs", "0"])
finally:
    shutil.rmtree(work, ignore_errors=True)

entry = {
    "label": f"{label}-orchestrator",
    "context": {"num_cpus": jobs, "patients": patients,
                "workers": max(2, jobs)},
    "orchestrator": {
        "inprocess_serial_patients_per_sec": patients / serial_s,
        "multiprocess_patients_per_sec": patients / multiproc_s,
        "threadpool_patients_per_sec": patients / threadpool_s,
        "multiprocess_vs_threadpool": threadpool_s / multiproc_s,
        "multiprocess_vs_serial": serial_s / multiproc_s,
    },
}

out_path = os.path.join(repo, "BENCH_campaign.json")
doc = {"runs": []}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)
doc["runs"] = [r for r in doc.get("runs", [])
               if r.get("label") != entry["label"]]
doc["runs"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

o = entry["orchestrator"]
print(f"merged run '{entry['label']}' into {out_path}")
print(f"  serial {o['inprocess_serial_patients_per_sec']:.0f}/s, "
      f"multiprocess {o['multiprocess_patients_per_sec']:.0f}/s, "
      f"threadpool {o['threadpool_patients_per_sec']:.0f}/s "
      f"(multiprocess/threadpool {o['multiprocess_vs_threadpool']:.2f}x)")
EOF
