#!/usr/bin/env bash
# MAC-zoo perf trajectory: builds bench_mac_comparison in Release, runs the
# per-protocol benchmark points (BM_TdmaPoint / BM_CsmaPoint / BM_AlohaPoint)
# with JSON output, and merges the run into BENCH_mac.json at the repo root
# under a label (default: current short commit hash).  Re-running with the
# same label replaces that label's entry, so the file accumulates one
# snapshot per labelled state — before/after pairs for MAC-layer PRs.
#
# usage: scripts/bench_mac.sh [label] [benchmark-filter]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
label=${1:-$(git -C "$repo" rev-parse --short HEAD)}
filter=${2:-}

cmake -B "$repo/build-bench" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build-bench" -j "$(nproc)" --target bench_mac_comparison

run_json=$(mktemp)
trap 'rm -f "$run_json"' EXIT
"$repo/build-bench/bench/bench_mac_comparison" \
  --benchmark_format=json \
  ${filter:+--benchmark_filter="$filter"} > "$run_json"

python3 - "$repo/BENCH_mac.json" "$label" "$run_json" <<'EOF'
import json
import os
import sys

out_path, label, run_path = sys.argv[1:4]
with open(run_path) as f:
    run = json.load(f)

doc = {"runs": []}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

doc["runs"] = [r for r in doc.get("runs", []) if r.get("label") != label]
doc["runs"].append({
    "label": label,
    "context": run.get("context", {}),
    "benchmarks": run.get("benchmarks", []),
})
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"merged run '{label}' into {out_path}")
EOF
