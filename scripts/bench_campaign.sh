#!/usr/bin/env bash
# Campaign-throughput trajectory: builds bench_campaign_throughput in
# Release, runs it with JSON output, and merges the run into
# BENCH_campaign.json at the repo root under a label (default: current
# short commit hash).  Re-running with the same label replaces that
# label's entry.  The merge also records the rebuild-vs-reset and
# rebuild-vs-columnar throughput ratios per population size, so the
# reset-per-run speedup on the default ECG ward sweep is pinned in the
# file, not recomputed by readers.
#
# usage: scripts/bench_campaign.sh [label] [benchmark-filter]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
label=${1:-$(git -C "$repo" rev-parse --short HEAD)}
filter=${2:-}

cmake -B "$repo/build-bench" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build-bench" -j "$(nproc)" --target bench_campaign_throughput

run_json=$(mktemp)
trap 'rm -f "$run_json"' EXIT
"$repo/build-bench/bench/bench_campaign_throughput" \
  --benchmark_format=json \
  ${filter:+--benchmark_filter="$filter"} > "$run_json"

python3 - "$repo/BENCH_campaign.json" "$label" "$run_json" <<'EOF'
import json
import os
import sys

out_path, label, run_path = sys.argv[1:4]
with open(run_path) as f:
    run = json.load(f)

benchmarks = run.get("benchmarks", [])

def rate(name):
    for b in benchmarks:
        if b.get("name") == name:
            return b.get("items_per_second")
    return None

speedups = {}
for arg in sorted({b["name"].rsplit("/", 1)[1]
                   for b in benchmarks if "/" in b.get("name", "")}):
    rebuild = rate(f"BM_CampaignRebuildPerRun/{arg}")
    reset = rate(f"BM_CampaignResetPerRun/{arg}")
    columnar = rate(f"BM_CampaignResetColumnar/{arg}")
    if rebuild:
        speedups[f"population_{arg}"] = {
            "rebuild_runs_per_sec": rebuild,
            "reset_runs_per_sec": reset,
            "reset_columnar_runs_per_sec": columnar,
            "reset_speedup": (reset / rebuild) if reset else None,
            "reset_columnar_speedup": (columnar / rebuild) if columnar else None,
        }

doc = {"runs": []}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

doc["runs"] = [r for r in doc.get("runs", []) if r.get("label") != label]
doc["runs"].append({
    "label": label,
    "context": run.get("context", {}),
    "speedups": speedups,
    "benchmarks": benchmarks,
})
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"merged run '{label}' into {out_path}")
for arg, s in speedups.items():
    print(f"  {arg}: reset {s['reset_speedup']:.2f}x, "
          f"reset+columnar {s['reset_columnar_speedup']:.2f}x")
EOF
