#!/usr/bin/env bash
# Tier-1 verification: full build (warnings are errors) + full test
# suite, an ASan/UBSan build of the memory-sensitive regression
# surfaces (fragment reassembly, energy-meter bounds, event-queue slot
# arena + inline-callback closures, simulator loop, scenario runner,
# heterogeneous-roster BAN composition), then a Release build of the
# kernel bench as a smoke test so the bench targets can't bitrot
# silently.
#
# usage: scripts/tier1.sh [jobs]
set -euo pipefail

jobs=${1:-$(nproc)}
repo=$(cd "$(dirname "$0")/.." && pwd)

echo "== tier 1: build + ctest =="
cmake -B "$repo/build" -S "$repo" -DBANSIM_WARNINGS_AS_ERRORS=ON
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== tier 1: ASan/UBSan regression subset =="
sanitize_tests=(test_delta_fragment test_energy_meter test_event_queue
                test_simulator test_scenario_runner test_heterogeneous_ban)
cmake -B "$repo/build-asan" -S "$repo" -DBANSIM_SANITIZE=ON \
  -DBANSIM_WARNINGS_AS_ERRORS=ON
cmake --build "$repo/build-asan" -j "$jobs" \
  --target "${sanitize_tests[@]}"
for t in "${sanitize_tests[@]}"; do
  echo "-- $t (asan) --"
  "$repo/build-asan/tests/$t" --gtest_brief=1
done

echo "== tier 1: Release bench smoke =="
cmake -B "$repo/build-bench" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build-bench" -j "$jobs" --target bench_kernel_scaling
# (plain double: the bundled benchmark predates "0.01s"-style suffixes)
"$repo/build-bench/bench/bench_kernel_scaling" \
  --benchmark_min_time=0.01 >/dev/null
echo "bench smoke: OK"

echo "tier 1: OK"
