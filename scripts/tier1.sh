#!/usr/bin/env bash
# Tier-1 verification: full build (warnings are errors) + full test
# suite (which includes the fuzz_smoke invariant battery), an
# ASan/UBSan build of the memory-sensitive regression surfaces
# (fragment reassembly, energy-meter bounds, event-queue slot arena +
# inline-callback closures, simulator loop, scenario runner,
# heterogeneous-roster BAN composition, invariant monitor, and the
# campaign watchdog/quarantine battery) plus a small sanitized fuzz run,
# CLI-level kill+resume and poison-shard quarantine smokes, then a
# Release build of the kernel bench as a smoke test so the bench targets
# can't bitrot silently.
#
# usage: scripts/tier1.sh [jobs]
set -euo pipefail

jobs=${1:-$(nproc)}
repo=$(cd "$(dirname "$0")/.." && pwd)

echo "== tier 1: build + ctest =="
cmake -B "$repo/build" -S "$repo" -DBANSIM_WARNINGS_AS_ERRORS=ON
cmake --build "$repo/build" -j "$jobs"
if ! ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"; then
  echo "tier 1: ctest FAILED." >&2
  echo "If fuzz_smoke failed, the log above names the offending seed(s)" >&2
  echo "and the minimized config; replay one interactively with" >&2
  echo "  $repo/build/tests/bansim_check --seed <seed>" >&2
  exit 1
fi

echo "== tier 1: ASan/UBSan regression subset =="
sanitize_tests=(test_delta_fragment test_energy_meter test_event_queue
                test_simulator test_scenario_runner test_heterogeneous_ban
                test_invariant_monitor test_fault_campaigns test_battery
                test_energy_store test_lifetime test_run_reset
                test_campaign_store test_campaign_orchestrator)
cmake -B "$repo/build-asan" -S "$repo" -DBANSIM_SANITIZE=ON \
  -DBANSIM_WARNINGS_AS_ERRORS=ON
cmake --build "$repo/build-asan" -j "$jobs" \
  --target "${sanitize_tests[@]}" bansim_check_cli
for t in "${sanitize_tests[@]}"; do
  echo "-- $t (asan) --"
  "$repo/build-asan/tests/$t" --gtest_brief=1
done
echo "-- bansim_check (asan, 10 seeds) --"
"$repo/build-asan/tests/bansim_check" --seeds 10

echo "== tier 1: campaign kill-at-50%-then-resume smoke =="
# Drive the resumable orchestrator through its CLI exactly the way a crash
# would: run a 16-shard campaign to completion, run the same campaign again
# but SIGKILL the whole process tree at 8 shards, resume the survivor, and
# require the two report artifacts to be byte-identical.
campdir=$(mktemp -d)
trap 'rm -rf "$campdir"' EXIT
camp="$repo/build/examples/bansim_campaign"
spec=(--patients 16 --shard-size 2 --measure-ms 300 --workers 2
      --protocols static_tdma,csma_ca)
"$camp" run "$campdir/whole" "${spec[@]}" >/dev/null
"$camp" report "$campdir/whole" > "$campdir/whole.txt"
kill_rc=0
"$camp" run "$campdir/killed" "${spec[@]}" --die-after 8 >/dev/null \
  || kill_rc=$?
if [ "$kill_rc" -ne 137 ]; then
  echo "tier 1: expected --die-after to die by SIGKILL (137), got $kill_rc" >&2
  exit 1
fi
"$camp" resume "$campdir/killed" --workers 2 >/dev/null
"$camp" verify "$campdir/killed" >/dev/null
"$camp" report "$campdir/killed" > "$campdir/killed.txt"
if ! diff -u "$campdir/whole.txt" "$campdir/killed.txt"; then
  echo "tier 1: resumed campaign report differs from uninterrupted run" >&2
  exit 1
fi
echo "campaign kill+resume smoke: OK (reports identical)"

echo "== tier 1: poison-shard quarantine smoke =="
# The watchdog battery (hangs included) runs under ASan above via
# test_campaign_orchestrator; this smoke drives the crash-flavoured
# quarantine path end to end through the CLI and pins the exit codes:
# 5 = complete except quarantined, for run, verify, and report alike.
poison_rc=0
"$camp" run "$campdir/poison" "${spec[@]}" --retry-budget 2 \
  --backoff-ms 10 --worker-chaos shard=1:crash >/dev/null || poison_rc=$?
if [ "$poison_rc" -ne 5 ]; then
  echo "tier 1: poison run should exit 5 (complete except quarantined)," \
       "got $poison_rc" >&2
  exit 1
fi
verify_rc=0
"$camp" verify "$campdir/poison" > "$campdir/poison_verify.txt" \
  || verify_rc=$?
if [ "$verify_rc" -ne 5 ]; then
  echo "tier 1: verify of quarantined store should exit 5, got $verify_rc" >&2
  cat "$campdir/poison_verify.txt" >&2
  exit 1
fi
report_rc=0
"$camp" report "$campdir/poison" > "$campdir/poison_report.txt" \
  || report_rc=$?
if [ "$report_rc" -ne 5 ]; then
  echo "tier 1: report of quarantined store should exit 5, got $report_rc" >&2
  exit 1
fi
grep -q "quarantined: shard 1" "$campdir/poison_report.txt"
grep -q "COMPLETE EXCEPT QUARANTINED" "$campdir/poison_report.txt"
grep -q "quarantined after 2 attempt(s) (crash)" "$campdir/poison_verify.txt"
echo "poison-shard quarantine smoke: OK (exit 5 across run/verify/report)"

echo "== tier 1: Release bench smoke =="
cmake -B "$repo/build-bench" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build-bench" -j "$jobs" --target bench_kernel_scaling
# (plain double: the bundled benchmark predates "0.01s"-style suffixes)
"$repo/build-bench/bench/bench_kernel_scaling" \
  --benchmark_min_time=0.01 >/dev/null
echo "bench smoke: OK"

echo "tier 1: OK"
